lib/targets/dwarf_target.ml: Binbuf Bytes List Prelude Printf String
