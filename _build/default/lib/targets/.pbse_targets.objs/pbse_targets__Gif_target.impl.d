lib/targets/gif_target.ml: Binbuf List Prelude
