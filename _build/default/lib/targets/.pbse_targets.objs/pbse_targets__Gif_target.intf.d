lib/targets/gif_target.mli:
