lib/targets/png_target.ml: Binbuf Buffer Char List Prelude String
