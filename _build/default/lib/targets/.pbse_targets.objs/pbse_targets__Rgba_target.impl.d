lib/targets/rgba_target.ml: Char Prelude String Tiff_common
