lib/targets/binbuf.ml: Buffer Bytes Char List String
