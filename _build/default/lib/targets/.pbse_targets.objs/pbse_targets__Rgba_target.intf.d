lib/targets/rgba_target.mli:
