lib/targets/png_target.mli:
