lib/targets/registry.ml: Bw_target Dwarf_target Gif_target Hashtbl List Pbse_ir Pbse_lang Png_target Readelf_target Rgba_target Tcpdump_target
