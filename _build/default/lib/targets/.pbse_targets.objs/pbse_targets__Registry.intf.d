lib/targets/registry.mli: Pbse_ir
