(* pngtest analog over the synthetic "MNG" image format.

   Layout: an 8-byte signature (137 'M' 'N' 'G' 13 10 26 10), then chunks:
     len u16 | type u16 | data (len bytes) | crc u16
   Chunk types: 1 IHDR, 2 tIME, 3 tEXt, 4 IDAT, 5 gAMA, 9 IEND.

   The two planted bugs replicate the paper's libpng case studies:
   - tIME month 0 makes (month - 1) signed-mod-12 negative, indexing the
     month-name table below its base (CVE-2015-7981 analog, oob-read);
   - a tEXt keyword whose first byte is a space drives the trailing-space
     trim loop below the buffer start (CVE-2015-8540 analog, oob-write,
     png_check_keyword in pngwutil.c). *)

let name = "pngtest"
let package = "libpng-1.2.56"

let planted_bugs =
  [
    ("time-month-oob-read", "oob-read"); (* CVE-2015-7981 analog *)
    (* the C code writes below the buffer; our loop condition reads the
       out-of-range byte first, so the oracle classifies it as a read *)
    ("keyword-trim-underflow", "oob-read"); (* CVE-2015-8540 analog *)
  ]

let body =
  {|
// ---------------- pngtest analog (MNG format) ----------------

fn check_signature() {
  if (in(0) != 137) { return 0; }
  if (in(1) != 'M') { return 0; }
  if (in(2) != 'N') { return 0; }
  if (in(3) != 'G') { return 0; }
  if (in(4) != 13) { return 0; }
  if (in(5) != 10) { return 0; }
  if (in(6) != 26) { return 0; }
  if (in(7) != 10) { return 0; }
  return 1;
}

// hdr layout: 0..1 width, 2..3 height, 4 depth, 5 colour type, 6 interlace
fn handle_ihdr(off, len, hdr) {
  if (len < 7) { out(8001); return 0; }
  var w = iu16(off);
  var h = iu16(off + 2);
  var depth = in(off + 4);
  var color = in(off + 5);
  var interlace = in(off + 6);
  if (w == 0 || h == 0) { out(8002); return 0; }
  if (depth != 1 && depth != 2 && depth != 4 && depth != 8 && depth != 16) {
    out(8003);
    return 0;
  }
  if (color > 6 || color == 5) { out(8004); return 0; }
  if (interlace > 1) { out(8008); return 0; }
  st16(hdr, w);
  st16(hdr + 2, h);
  hdr[4] = depth;
  hdr[5] = color;
  hdr[6] = interlace;
  out(w);
  out(h);
  return 1;
}

// BUG(time-month-oob-read, oob-read): month = 0 gives a signed -1 % 12
// = -1 index into the month-name table (png_convert_to_rfc1123 analog).
fn handle_time(off, len) {
  if (len < 7) { out(8010); return 0; }
  var year = iu16(off);
  var month = in(off + 2);
  var day = in(off + 3);
  var hour = in(off + 4);
  var minute = in(off + 5);
  var second = in(off + 6);
  var months = alloc(36);
  fill8(months, 0, 'J', 36);
  var idx = srem(month - 1, 12);
  out(year);
  out(months[idx * 3]);
  out(day % 32);
  out(hour % 24);
  out(minute % 60);
  out(second % 61);
  return 1;
}

// png_check_keyword analog.
// BUG(keyword-trim-underflow, oob-write): trimming trailing spaces walks
// below the buffer when the whole keyword is spaces.
fn check_keyword(kbuf, key_len) {
  if (key_len == 0) { return 0; }
  var kp = key_len - 1;
  while (kbuf[kp] == ' ') {
    kbuf[kp] = 0;
    kp = kp - 1;
    key_len = key_len - 1;
  }
  return key_len;
}

fn handle_text(off, len) {
  var klen = imin(len, 79);
  var kbuf = alloc(80);
  copy_in(kbuf, 0, off, klen);
  // find the keyword terminator
  var key_len = 0;
  while (key_len < klen && kbuf[key_len] != 0) {
    key_len = key_len + 1;
  }
  var trimmed = check_keyword(kbuf, key_len);
  out(trimmed);
  return 1;
}

// IDAT payload: run-length encoded rows; correct bounds checks, but the
// decode loop is a classic trap phase.
fn handle_idat(off, len, pixels, cap) {
  var produced = 0;
  var i = 0;
  while (i < len) {
    var op = in(off + i);
    if ((op & 0x80) != 0) {
      // repeat: low 7 bits give the count, next byte the value
      var count = op & 0x7F;
      if (i + 1 >= len) { out(8020); return produced; }
      var value = in(off + i + 1);
      var j = 0;
      while (j < count) {
        if (produced < cap) {
          pixels[produced] = value;
          produced = produced + 1;
        }
        j = j + 1;
      }
      i = i + 2;
    } else {
      // literal run of (op + 1) bytes
      var count = op + 1;
      var j = 0;
      while (j < count && i + 1 + j < len) {
        if (produced < cap) {
          pixels[produced] = in(off + i + 1 + j);
          produced = produced + 1;
        }
        j = j + 1;
      }
      i = i + 1 + count;
    }
  }
  return produced;
}

// palette: triples of r,g,b; count must divide evenly and stay <= 256
fn handle_plte(off, len, palette) {
  if (len % 3 != 0) { out(8040); return 0; }
  var count = len / 3;
  if (count > 256) { out(8041); return 0; }
  var i = 0;
  while (i < count) {
    if (i < 256) {
      palette[i * 3] = in(off + i * 3);
      palette[i * 3 + 1] = in(off + i * 3 + 1);
      palette[i * 3 + 2] = in(off + i * 3 + 2);
    }
    i = i + 1;
  }
  out(count);
  return count;
}

fn handle_trns(off, len, plte_count) {
  if (len > plte_count) { out(8050); return 0; }
  var i = 0;
  var opaque = 0;
  while (i < len) {
    if (in(off + i) == 255) { opaque = opaque + 1; }
    i = i + 1;
  }
  out(opaque);
  return 1;
}

fn handle_bkgd(off, len, color_type) {
  if (color_type == 3) {
    if (len < 1) { out(8060); return 0; }
    out(in(off));
  } else { if (color_type == 0 || color_type == 4) {
    if (len < 2) { out(8061); return 0; }
    out(iu16(off));
  } else {
    if (len < 6) { out(8062); return 0; }
    out(iu16(off) + iu16(off + 2) + iu16(off + 4));
  } }
  return 1;
}

fn handle_chrm(off, len) {
  if (len < 16) { out(8070); return 0; }
  var i = 0;
  while (i < 8) {
    var v = iu16(off + i * 2);
    if (v > 40000) { out(8071); }
    else { out(v); }
    i = i + 1;
  }
  return 1;
}

fn handle_phys(off, len) {
  if (len < 5) { out(8080); return 0; }
  var x = iu16(off);
  var y = iu16(off + 2);
  var unit = in(off + 4);
  if (unit > 1) { out(8081); return 0; }
  if (x == 0 || y == 0) { out(8082); return 0; }
  out(x * 10000 / y);
  return 1;
}

fn handle_sbit(off, len, color_type) {
  var expected = 1;
  if (color_type == 2 || color_type == 3) { expected = 3; }
  if (color_type == 4) { expected = 2; }
  if (color_type == 6) { expected = 4; }
  if (len < expected) { out(8090); return 0; }
  var i = 0;
  while (i < expected) {
    var bits = in(off + i);
    if (bits == 0 || bits > 16) { out(8091); }
    else { out(bits); }
    i = i + 1;
  }
  return 1;
}

fn handle_hist(off, len, plte_count) {
  if (len != plte_count * 2) { out(8100); return 0; }
  var total = 0;
  var i = 0;
  while (i < plte_count) {
    total = t16(total + iu16(off + i * 2));
    i = i + 1;
  }
  out(total);
  return 1;
}

// compressed text: keyword, NUL, method byte, then RLE data (same
// scheme as IDAT) decoded into a bounded buffer
fn handle_ztxt(off, len) {
  var kend = 0;
  while (kend < len && in(off + kend) != 0) {
    kend = kend + 1;
  }
  if (kend >= len || kend == 0 || kend > 79) { out(8110); return 0; }
  var method = in(off + kend + 1);
  if (method != 0) { out(8111); return 0; }
  var text = alloc(256);
  var produced = handle_idat(off + kend + 2, len - kend - 2, text, 256);
  out(produced);
  return 1;
}

// row filters over the decoded pixel stream, as png reconstruction does:
// 0 none, 1 sub, 2 up, 3 average, 4 paeth-lite
fn reconstruct_rows(pixels, count, width, filter) {
  if (width == 0) { return 0; }
  var rows = count / width;
  var r = 1;
  while (r < rows) {
    var c = 0;
    while (c < width) {
      var idx = r * width + c;
      var above = pixels[idx - width];
      var left = 0;
      if (c > 0) { left = pixels[idx - 1]; }
      var v = pixels[idx];
      if (filter == 1) { pixels[idx] = t8(v + left); }
      else { if (filter == 2) { pixels[idx] = t8(v + above); }
      else { if (filter == 3) { pixels[idx] = t8(v + (left + above) / 2); }
      else { if (filter == 4) {
        var p = left + above - above / 2;
        pixels[idx] = t8(v + p);
      } } } }
      c = c + 1;
    }
    r = r + 1;
  }
  return rows;
}

// Adam7-lite interlace pass sizes
fn interlace_passes(w, h) {
  var pass = 0;
  var total = 0;
  while (pass < 7) {
    var pw = (w + 7) / 8;
    var ph = (h + 7) / 8;
    if (pass > 0) { pw = (w + 3) / 4; }
    if (pass > 2) { pw = (w + 1) / 2; }
    if (pass > 4) { pw = w; }
    if (pass > 1) { ph = (h + 3) / 4; }
    if (pass > 3) { ph = (h + 1) / 2; }
    if (pass > 5) { ph = h; }
    out(pw * ph);
    total = total + pw * ph;
    pass = pass + 1;
  }
  return total;
}

fn handle_gama(off, len) {
  if (len < 2) { out(8030); return 0; }
  var gamma = iu16(off);
  if (gamma == 0) { out(8031); return 0; }
  out(100000 / gamma);
  return 1;
}

fn main() {
  if (check_signature() == 0) { out(8000); return 1; }
  var size = in_size();
  var pos = 8;
  var have_header = 0;
  var hdr = alloc(8);
  var palette = alloc(768);
  var plte_count = 0;
  var pixels = alloc(4096);
  var produced = 0;
  var chunks = 0;
  while (pos + 4 <= size && chunks < 64) {
    var len = iu16(pos);
    var type = iu16(pos + 2);
    var data = pos + 4;
    if (data + len + 2 > size) { out(8007); break; }
    if (type == 9) { out(8099); break; }
    if (type == 1) { have_header = handle_ihdr(data, len, hdr); }
    if (type == 2) { handle_time(data, len); }
    if (type == 3) { handle_text(data, len); }
    if (type == 5) { handle_gama(data, len); }
    if (type == 6) { plte_count = handle_plte(data, len, palette); }
    if (type == 7) { handle_trns(data, len, plte_count); }
    if (type == 8) { handle_bkgd(data, len, hdr[5]); }
    if (type == 10) { handle_chrm(data, len); }
    if (type == 11) { handle_phys(data, len); }
    if (type == 12) { handle_sbit(data, len, hdr[5]); }
    if (type == 13) { handle_hist(data, len, plte_count); }
    if (type == 14) { handle_ztxt(data, len); }
    if (type == 4) {
      if (have_header == 1) {
        produced = produced + handle_idat(data, len, pixels, 4096 - produced);
      } else {
        out(8005);
      }
    }
    // crc trails the data; verify softly (mismatch only logs)
    var crc = iu16(data + len);
    var expect = t16(len * 31 + type * 7);
    if (crc != expect) { out(8006); }
    pos = data + len + 2;
    chunks = chunks + 1;
  }
  if (have_header == 1 && produced > 0) {
    var w = ld16(hdr);
    reconstruct_rows(pixels, produced, w, 1 + produced % 4);
    if (hdr[6] == 1) { interlace_passes(w, ld16(hdr + 2)); }
  }
  out(produced);
  out(77778);
  return 0;
}
|}

let source = Prelude.wrap body

(* --- seeds ----------------------------------------------------------------- *)

let chunk b ~type_ data =
  let len = String.length data in
  Binbuf.u16 b len;
  Binbuf.u16 b type_;
  Binbuf.raw b data;
  Binbuf.u16 b ((len * 31) + (type_ * 7)) (* matching crc *)

let le16 v = String.init 2 (fun i -> Char.chr ((v lsr (8 * i)) land 0xFF))

let build_seed ?(ancillary = true) ?(interlace = false) ~width ~height ~rows ~with_time
    ~with_text ~keyword () =
  let b = Binbuf.create () in
  List.iter (Binbuf.u8 b) [ 137; Char.code 'M'; Char.code 'N'; Char.code 'G'; 13; 10; 26; 10 ];
  chunk b ~type_:1
    (le16 width ^ le16 height ^ "\x08\x03" ^ if interlace then "\x01" else "\x00");
  chunk b ~type_:5 (le16 220);
  if ancillary then begin
    (* palette of 8 entries plus the chunks that depend on it *)
    let plte = String.init 24 (fun i -> Char.chr ((i * 9) land 0xFF)) in
    chunk b ~type_:6 plte;
    chunk b ~type_:7 "\xff\x80\xff\x00";
    chunk b ~type_:8 "\x02";
    chunk b ~type_:10 (String.concat "" (List.init 8 (fun i -> le16 (3000 + (i * 100)))));
    chunk b ~type_:11 (le16 2834 ^ le16 2834 ^ "\x01");
    chunk b ~type_:12 "\x08\x08\x08";
    chunk b ~type_:13 (String.concat "" (List.init 8 (fun i -> le16 (i * 7))));
    chunk b ~type_:14 ("Comment\000\000" ^ "\x04zip!\x82\x21")
  end;
  if with_text then chunk b ~type_:3 (keyword ^ "\000comment body");
  if with_time then chunk b ~type_:2 (le16 2015 ^ "\x0b\x18\x0c\x1e\x2d");
  (* IDAT: [rows] rows of run-length data *)
  let idat = Buffer.create 64 in
  for row = 0 to rows - 1 do
    Buffer.add_char idat (Char.chr (0x80 lor (width land 0x7F)));
    Buffer.add_char idat (Char.chr ((row * 3) land 0xFF));
    (* plus a short literal run *)
    Buffer.add_char idat (Char.chr 2);
    Buffer.add_string idat "abc"
  done;
  chunk b ~type_:4 (Buffer.contents idat);
  chunk b ~type_:9 "";
  Binbuf.contents b

let seed_small () =
  build_seed ~width:16 ~height:8 ~rows:8 ~with_time:true ~with_text:true
    ~keyword:"Author" ()

let seed_large () =
  build_seed ~width:100 ~height:220 ~rows:220 ~with_time:true ~with_text:true
    ~interlace:true ~keyword:"Description" ()

(* A seed that actually triggers the keyword-trim underflow: keyword made
   entirely of spaces. Used by the Fig. 5-style demonstrations. *)
let seed_buggy_keyword () =
  build_seed ~width:16 ~height:8 ~rows:4 ~with_time:false ~with_text:true
    ~keyword:"   " ()

(* month byte 0 in tIME: triggers the rfc1123 analog. *)
let seed_buggy_month () =
  let b = Binbuf.create () in
  List.iter (Binbuf.u8 b) [ 137; Char.code 'M'; Char.code 'N'; Char.code 'G'; 13; 10; 26; 10 ];
  chunk b ~type_:1 (le16 4 ^ le16 4 ^ "\x08\x02\x00");
  chunk b ~type_:2 (le16 2015 ^ "\x00\x18\x0c\x1e\x2d");
  chunk b ~type_:9 "";
  Binbuf.contents b

let seeds () =
  [
    ("small", seed_small ());
    ("large", seed_large ());
    ( "mid",
      build_seed ~width:32 ~height:32 ~rows:32 ~with_time:true ~with_text:false
        ~interlace:true ~keyword:"" () );
    ( "plain",
      build_seed ~ancillary:false ~width:12 ~height:6 ~rows:6 ~with_time:false
        ~with_text:false ~keyword:"" () );
  ]
