(* dwarfdump analog over the synthetic "DORF" debug-info format.

   Layout (little-endian):
     header, 48 bytes:
       0..3  magic "DORF"        4..5  version (2..4)
       6..9  abbrev_off          10..11 abbrev_count
       12..15 info_off           16..17 info_size
       18..21 str_off            22..23 str_size
       24..27 line_off           28..29 line_size
       30..33 aranges_off        34..35 aranges_size
       36..39 frame_off          40..41 frame_size
       42..45 macro_off          46..47 macro_size
     abbrev entry: code uleb, tag uleb, has_children u8, then
       (attr uleb, form uleb) pairs terminated by (0,0); at most 4 pairs
       are retained. Forms: 1 ref2 (u16), 2 data1, 3 data2, 4 data4,
       5 string (uleb offset into .str).
     info: CU name offset u16, then a DIE tree: code uleb, attribute
       values per the abbrev, children (if flagged) until a 0 code.
     line: fncount uleb, opcode_count u8, opcode lengths, then a
       bytecoded state machine (1 advance-pc uleb, 2 set-file uleb,
       3 advance-line uleb, 4 copy, 0 extended/end).

   ULEB decoding, the DIE recursion and the line-number state machine
   give this target the most trap phases of the four (the paper found
   9-11 on dwarfdump seeds) and it carries the most planted bugs, like
   libdwarf carried 10 of the paper's 21. *)

let name = "dwarfdump"
let package = "libdwarf-20151114"

let planted_bugs =
  [
    ("abbrev-code-oob-read", "oob-read"); (* CVE-2015-8538 analog *)
    ("cu-name-oob-read", "oob-read");
    ("form-string-oob-read", "oob-read"); (* CVE-2015-8750 analog *)
    ("sibling-ref-oob-read", "oob-read"); (* CVE-2016-2050 analog *)
    ("line-file-index-oob-read", "oob-read"); (* CVE-2016-2091 analog *)
    ("line-ftable-alloc-overflow", "oob-write");
    ("line-opcode-lengths-oob-write", "oob-write");
    ("null-abbrev-table-deref", "null-deref"); (* CVE-2014-9482 analog *)
  ]

let body =
  {|
// ---------------- dwarfdump driver (DORF format) ----------------

fn dorf_check_header() {
  if (in(0) != 'D') { return 0; }
  if (in(1) != 'O') { return 0; }
  if (in(2) != 'R') { return 0; }
  if (in(3) != 'F') { return 0; }
  var version = iu16(4);
  if (version < 2 || version > 4) { return 0; }
  return 1;
}

// Abbrev slots: 16 bytes each, [tag, has_children, nattrs, pad,
// (attr, form) x 4, pad...]. Valid codes are 1..63.
fn parse_abbrevs(off, count, abbrevs) {
  var pos = off;
  var n = 0;
  while (n < count) {
    var code = uleb(pos);
    pos = pos + uleb_len(pos);
    if (code == 0 || code >= 64) { out(5001); return 0; }
    var tag = uleb(pos);
    pos = pos + uleb_len(pos);
    var children = in(pos);
    pos = pos + 1;
    var slot = code * 16;
    abbrevs[slot] = t8(tag);
    abbrevs[slot + 1] = children;
    var nattrs = 0;
    var guard = 0;
    while (guard < 8) {
      var attr = uleb(pos);
      pos = pos + uleb_len(pos);
      var form = uleb(pos);
      pos = pos + uleb_len(pos);
      if (attr == 0 && form == 0) { break; }
      if (nattrs < 4) {
        abbrevs[slot + 4 + nattrs * 2] = t8(attr);
        abbrevs[slot + 5 + nattrs * 2] = t8(form);
        nattrs = nattrs + 1;
      }
      guard = guard + 1;
    }
    abbrevs[slot + 2] = nattrs;
    n = n + 1;
  }
  return 1;
}

// BUG(form-string-oob-read, oob-read): scans for NUL past str_size.
fn read_str(strbuf, off) {
  var len = 0;
  while (strbuf[off + len] != 0) {
    len = len + 1;
  }
  return len;
}

// the bounded variant used by the (correct) macro section code
fn read_str_safe(strbuf, str_size, off) {
  var len = 0;
  while (off + len <u str_size && strbuf[off + len] != 0) {
    len = len + 1;
  }
  return len;
}

// Parse one DIE; returns the new offset within the info buffer.
fn parse_die(infobuf, info_size, pos, abbrevs, strbuf, str_size, depth) {
  if (depth > 16) { out(5002); return info_size; }
  if (pos >= info_size) { return info_size; }
  var code = uleb_buf(infobuf, pos);
  pos = pos + uleb_buf_len(infobuf, pos);
  if (code == 0) { return pos; }
  // BUG(abbrev-code-oob-read, oob-read): the code is not checked
  // against the table bound.
  // BUG(null-abbrev-table-deref, null-deref): the table pointer is null
  // when the file declares no abbrevs, yet DIE parsing dereferences it.
  var slot = code * 16;
  var tag = abbrevs[slot];
  var children = abbrevs[slot + 1];
  var nattrs = abbrevs[slot + 2];
  out(tag);
  var a = 0;
  while (a < nattrs) {
    var form = abbrevs[slot + 5 + a * 2];
    if (form == 1) {
      // BUG(sibling-ref-oob-read, oob-read): u16 reference used as an
      // unchecked index into the info buffer.
      var ref = ld16(infobuf + pos);
      pos = pos + 2;
      out(infobuf[ref]);
    } else { if (form == 2) {
      out(infobuf[imin(pos, info_size - 1)]);
      pos = pos + 1;
    } else { if (form == 3) {
      pos = pos + 2;
    } else { if (form == 4) {
      pos = pos + 4;
    } else { if (form == 5) {
      var soff = uleb_buf(infobuf, pos);
      pos = pos + uleb_buf_len(infobuf, pos);
      out(read_str(strbuf, soff));
    } else { if (form == 6) {
      // block: length byte then raw bytes, digested
      var blen = infobuf[imin(pos, info_size - 1)];
      pos = pos + 1;
      var sum = 0;
      var k = 0;
      while (k < blen && pos + k < info_size) {
        sum = t8(sum + infobuf[pos + k]);
        k = k + 1;
      }
      pos = pos + blen;
      out(sum);
    } else { if (form == 7) {
      // flag: no data
      out(1);
    } else { if (form == 8) {
      pos = pos + 4;
      out(8);
    } else {
      out(5003);
    } } } } } } } }
    a = a + 1;
  }
  if (children != 0) {
    var guard = 0;
    while (pos < info_size && guard < 16) {
      var peek = uleb_buf(infobuf, pos);
      if (peek == 0) { pos = pos + 1; break; }
      pos = parse_die(infobuf, info_size, pos, abbrevs, strbuf, str_size, depth + 1);
      guard = guard + 1;
    }
  }
  return pos;
}

// uleb over an in-memory buffer
fn uleb_buf(buf, o) {
  var result = 0;
  var shift = 0;
  var i = 0;
  while (i < 5) {
    var byte = buf[o + i];
    result = result | ((byte & 0x7F) << shift);
    if ((byte & 0x80) == 0) { return result; }
    shift = shift + 7;
    i = i + 1;
  }
  return result;
}

fn uleb_buf_len(buf, o) {
  var i = 0;
  while (i < 5) {
    if ((buf[o + i] & 0x80) == 0) { return i + 1; }
    i = i + 1;
  }
  return 5;
}

// .aranges: count u16 then (addr u32, len u16) pairs until (0, 0)
fn parse_aranges(off, size) {
  if (size < 2) { return 0; }
  var declared = iu16(off);
  var pos = off + 2;
  var end = off + size;
  var seen = 0;
  while (pos + 6 <= end && seen < 64) {
    var addr = iu32(pos);
    var len = iu16(pos + 4);
    pos = pos + 6;
    if (addr == 0 && len == 0) { break; }
    if (len == 0) { out(5020); }
    else { out(addr + len); }
    seen = seen + 1;
  }
  if (seen != declared) { out(5021); }
  return seen;
}

// .frame: length-prefixed CIE/FDE records, with a call-frame instruction
// decoder for FDE bodies (high-2-bit primary opcodes, as in DWARF CFI)
fn decode_cfi(off, len) {
  var pos = 0;
  var guard = 0;
  while (pos < len && guard < 64) {
    var op = in(off + pos);
    pos = pos + 1;
    var primary = op >> 6;
    if (primary == 1) { out(6100 + (op & 63)); }        // advance_loc
    else { if (primary == 2) {
      // offset: register in low bits, uleb operand follows
      out(6200 + (op & 63));
      pos = pos + uleb_len(off + pos);
    } else { if (primary == 3) { out(6300 + (op & 63)); } // restore
    else {
      if (op == 0) { out(6000); }                        // nop
      else { if (op == 12) {                             // def_cfa reg, off
        out(6012);
        pos = pos + uleb_len(off + pos);
        pos = pos + uleb_len(off + pos);
      } else { if (op == 14) {                           // def_cfa_offset
        out(6014);
        pos = pos + uleb_len(off + pos);
      } else {
        out(6001);
      } } }
    } } }
    guard = guard + 1;
  }
  return pos;
}

fn parse_frame(off, size) {
  var pos = off;
  var end = off + size;
  var records = 0;
  while (pos + 4 <= end && records < 16) {
    var rlen = iu16(pos);
    var id = iu16(pos + 2);
    if (rlen == 0) { break; }
    if (pos + 4 + rlen > end) { out(5030); break; }
    if (id == 0xFFFF) {
      // CIE: version, augmentation string, alignments, return register
      var version = in(pos + 4);
      if (version < 1 || version > 4) { out(5031); }
      var aug = pos + 5;
      var alen = 0;
      while (alen < 8 && in(aug + alen) != 0) {
        if (in(aug + alen) == 'z') { out(5032); }
        alen = alen + 1;
      }
      var p2 = aug + alen + 1;
      out(uleb(p2));
      p2 = p2 + uleb_len(p2);
      out(uleb(p2));
    } else {
      // FDE: pc range then call-frame instructions
      var pc_begin = iu32(pos + 4);
      var pc_range = iu16(pos + 8);
      if (pc_range == 0) { out(5033); }
      out(pc_begin);
      decode_cfi(pos + 10, rlen - 6);
    }
    pos = pos + 4 + rlen;
    records = records + 1;
  }
  return records;
}

// .macro: type-tagged entries referencing the string table (offsets
// checked here — the unchecked variants are the planted DIE bugs)
fn parse_macro(off, size, strbuf, str_size) {
  var pos = off;
  var end = off + size;
  var guard = 0;
  while (pos < end && guard < 64) {
    var kind = in(pos);
    pos = pos + 1;
    if (kind == 0) { break; }
    if (kind == 1) {
      // define: line uleb, name offset uleb
      var line = uleb(pos);
      pos = pos + uleb_len(pos);
      var noff = uleb(pos);
      pos = pos + uleb_len(pos);
      out(line);
      out(read_str_safe(strbuf, str_size, noff));
    } else { if (kind == 2) {
      // undef: name offset uleb
      var noff = uleb(pos);
      pos = pos + uleb_len(pos);
      out(read_str_safe(strbuf, str_size, noff));
    } else {
      out(5040);
      break;
    } }
    guard = guard + 1;
  }
  return 0;
}

fn parse_line_program(off, size, strbuf, str_size) {
  if (size < 3) { return 0; }
  var fncount = uleb(off);
  var pos = off + uleb_len(off);
  // BUG(line-ftable-alloc-overflow, oob-write): the table size is
  // truncated to 8 bits but the fill loop is not.
  var ftable = alloc(imax(t8(fncount * 2), 1));
  var i = 0;
  while (i < fncount) {
    ftable[i * 2] = in(pos);
    ftable[i * 2 + 1] = 1;
    pos = pos + 1;
    i = i + 1;
  }
  var opcode_count = in(pos);
  pos = pos + 1;
  var olens = alloc(12);
  var oi = 0;
  while (oi < opcode_count) {
    // BUG(line-opcode-lengths-oob-write, oob-write): the standard
    // opcode-length table is fixed at 12 entries, the count is not.
    olens[oi] = in(pos);
    pos = pos + 1;
    oi = oi + 1;
  }
  // the state machine: a classic trap phase
  var line = 1;
  var addr = 0;
  var fileno = 1;
  var end = off + size;
  var guard = 0;
  while (pos < end && guard < 256) {
    var op = in(pos);
    pos = pos + 1;
    if (op == 0) {
      // extended: length, then sub-opcode
      var elen = in(pos);
      var sub = in(pos + 1);
      if (sub == 1) { out(5060); }                      // end_sequence
      else { if (sub == 2) { out(iu32(pos + 2)); }      // set_address
      else { if (sub == 3) {                            // define_file
        var fidx = in(pos + 2);
        out(5063 + fidx);
      } else {
        out(5064);
      } } }
      pos = pos + 1 + elen;
    } else { if (op == 1) {
      addr = addr + uleb(pos);
      pos = pos + uleb_len(pos);
    } else { if (op == 2) {
      fileno = uleb(pos);
      pos = pos + uleb_len(pos);
      // BUG(line-file-index-oob-read, oob-read): the file index is used
      // without checking it against the table size.
      out(ftable[fileno * 2]);
    } else { if (op == 3) {
      line = line + uleb(pos);
      pos = pos + uleb_len(pos);
    } else { if (op == 4) {
      out(addr + line * 1000);
    } else {
      // special opcode
      line = line + (op % 10);
      addr = addr + (op / 10);
    } } } } }
    guard = guard + 1;
  }
  out(line);
  out(addr);
  return 0;
}

fn main() {
  if (dorf_check_header() == 0) { out(5000); return 1; }
  var abbrev_off = iu32(6);
  var abbrev_count = iu16(10);
  var info_off = iu32(12);
  var info_size = iu16(16);
  var str_off = iu32(18);
  var str_size = iu16(22);
  var line_off = iu32(24);
  var line_size = iu16(28);
  var aranges_off = iu32(30);
  var aranges_size = iu16(34);
  var frame_off = iu32(36);
  var frame_size = iu16(40);
  var macro_off = iu32(42);
  var macro_size = iu16(46);
  if (abbrev_count > 32) { out(5004); return 1; }
  if (info_size > 4096 || str_size > 4096 || line_size > 4096) { out(5005); return 1; }
  var size = in_size();
  if (abbrev_count > 0 && (abbrev_off < 48 || abbrev_off > size)) { out(5006); return 1; }
  if (info_size > 0 && (info_off < 48 || info_off + info_size > size)) { out(5007); return 1; }
  if (str_size > 0 && (str_off < 48 || str_off + str_size > size)) { out(5008); return 1; }
  if (line_size > 0 && (line_off < 48 || line_off + line_size > size)) { out(5009); return 1; }
  if (aranges_size > 0 && (aranges_off < 48 || aranges_off + aranges_size > size)) { out(5010); return 1; }
  if (frame_size > 0 && (frame_off < 48 || frame_off + frame_size > size)) { out(5011); return 1; }
  if (macro_size > 0 && (macro_off < 48 || macro_off + macro_size > size)) { out(5012); return 1; }
  // .str
  var strbuf = alloc(imax(str_size, 1));
  copy_in(strbuf, 0, str_off, str_size);
  // .abbrev: the table stays null when the file declares no abbrevs
  var abbrevs = 0;
  if (abbrev_count > 0) {
    abbrevs = alloc(1024);
    if (parse_abbrevs(abbrev_off, abbrev_count, abbrevs) == 0) { return 1; }
  }
  // .info
  if (info_size > 2) {
    var infobuf = alloc(info_size);
    copy_in(infobuf, 0, info_off, info_size);
    // BUG(cu-name-oob-read, oob-read): the CU name offset is unchecked
    // and this scan has no table bound.
    var name_off = ld16(infobuf);
    var name_len = 0;
    while (strbuf[name_off + name_len] != 0) {
      name_len = name_len + 1;
    }
    out(name_len);
    var pos = 2;
    var guard = 0;
    while (pos < info_size && guard < 32) {
      pos = parse_die(infobuf, info_size, pos, abbrevs, strbuf, str_size, 0);
      guard = guard + 1;
    }
  }
  // .line
  if (line_size > 0) {
    parse_line_program(line_off, line_size, strbuf, str_size);
  }
  // .aranges, .frame and .macro
  if (aranges_size > 0) { parse_aranges(aranges_off, aranges_size); }
  if (frame_size > 0) { parse_frame(frame_off, frame_size); }
  if (macro_size > 0) { parse_macro(macro_off, macro_size, strbuf, str_size); }
  out(77782);
  return 0;
}
|}

let source = Prelude.wrap body

(* --- seeds ----------------------------------------------------------------- *)

let uleb_encode buf v =
  let rec go v =
    if v < 0x80 then Binbuf.u8 buf v
    else begin
      Binbuf.u8 buf (0x80 lor (v land 0x7F));
      go (v lsr 7)
    end
  in
  go v

(* A consistent DORF file: [nabbrevs] abbrevs, a DIE tree of [ndies]
   top-level entries each carrying a string and a data1 attribute, a
   string table with NUL-terminated names, and a line program with
   [nlineops] opcodes. *)
let build_seed ~nabbrevs ~ndies ~nlineops ~strpad =
  let b = Binbuf.create () in
  Binbuf.raw b "DORF";
  Binbuf.u16 b 2;
  (* placeholders for the seven-section table, patched below *)
  for _ = 1 to 7 do
    Binbuf.u32 b 0;
    Binbuf.u16 b 0
  done;
  assert (Binbuf.pos b = 48);
  (* .str *)
  let str_off = Binbuf.pos b in
  let names = List.init (max 2 ndies) (fun i -> Printf.sprintf "symbol_%d\000" i) in
  let name_offsets =
    let off = ref 0 in
    List.map
      (fun n ->
        let o = !off in
        off := !off + String.length n;
        o)
      names
  in
  List.iter (Binbuf.raw b) names;
  Binbuf.fill b 0 strpad;
  let str_size = Binbuf.pos b - str_off in
  (* .abbrev: code i+1, tag 17+i; forms vary with i, and code 2 bears
     children so the DIE tree recurses *)
  let abbrev_forms i =
    match i mod 3 with
    | 0 -> [ (3, 5); (58, 2) ] (* string + data1 *)
    | 1 -> [ (52, 7); (59, 3) ] (* flag + data2 *)
    | _ -> [ (60, 6); (61, 8) ] (* block + ref4 *)
  in
  let abbrev_off = Binbuf.pos b in
  for i = 0 to nabbrevs - 1 do
    uleb_encode b (i + 1);
    uleb_encode b (17 + i);
    Binbuf.u8 b (if i = 1 then 1 else 0);
    List.iter
      (fun (attr, form) ->
        uleb_encode b attr;
        uleb_encode b form)
      (abbrev_forms i);
    uleb_encode b 0;
    uleb_encode b 0
  done;
  (* .info: CU name offset, then DIEs whose attribute values match each
     abbrev's forms; abbrev 2 carries one child (exercising recursion) *)
  let info_buf = Binbuf.create () in
  Binbuf.u16 info_buf (List.nth name_offsets 0);
  let emit_die_attrs abbrev i =
    List.iter
      (fun (_, form) ->
        match form with
        | 5 -> uleb_encode info_buf (List.nth name_offsets (i mod List.length name_offsets))
        | 2 -> Binbuf.u8 info_buf (i land 0xFF)
        | 7 -> () (* flag: no data *)
        | 3 -> Binbuf.u16 info_buf (i * 3)
        | 6 ->
          Binbuf.u8 info_buf 3;
          Binbuf.u8 info_buf 1;
          Binbuf.u8 info_buf 2;
          Binbuf.u8 info_buf 3
        | 8 -> Binbuf.u32 info_buf (0x40 + i)
        | _ -> assert false)
      (abbrev_forms abbrev)
  in
  for i = 0 to ndies - 1 do
    let abbrev = i mod nabbrevs in
    uleb_encode info_buf (abbrev + 1);
    emit_die_attrs abbrev i;
    if abbrev = 1 then begin
      (* one child DIE using abbrev 1 (a leaf), then the 0 terminator *)
      uleb_encode info_buf 1;
      emit_die_attrs 0 (i + 1);
      Binbuf.u8 info_buf 0
    end
  done;
  Binbuf.u8 info_buf 0;
  let info = Bytes.to_string (Binbuf.contents info_buf) in
  let info_off = Binbuf.pos b in
  Binbuf.raw b info;
  let info_size = String.length info in
  (* .line: 2 file names, 4 opcode lengths, then [nlineops] opcodes *)
  let line_off = Binbuf.pos b in
  uleb_encode b 2;
  Binbuf.u8 b (List.nth name_offsets 0);
  Binbuf.u8 b (List.nth name_offsets 1);
  Binbuf.u8 b 4;
  Binbuf.u8 b 0;
  Binbuf.u8 b 1;
  Binbuf.u8 b 1;
  Binbuf.u8 b 1;
  for i = 0 to nlineops - 1 do
    match i mod 4 with
    | 0 ->
      Binbuf.u8 b 1;
      uleb_encode b (i + 1)
    | 1 ->
      Binbuf.u8 b 3;
      uleb_encode b 2
    | 2 -> Binbuf.u8 b 4
    | _ ->
      Binbuf.u8 b 2;
      uleb_encode b 1
  done;
  let line_size = Binbuf.pos b - line_off in
  (* .aranges *)
  let aranges_off = Binbuf.pos b in
  let naranges = max 2 (ndies / 4) in
  Binbuf.u16 b naranges;
  for i = 0 to naranges - 1 do
    Binbuf.u32 b (0x400000 + (i * 0x1000));
    Binbuf.u16 b (64 + i)
  done;
  Binbuf.u32 b 0;
  Binbuf.u16 b 0;
  let aranges_size = Binbuf.pos b - aranges_off in
  (* .frame: one CIE then FDEs with small CFI programs *)
  let frame_off = Binbuf.pos b in
  let cie = Binbuf.create () in
  Binbuf.u8 cie 1;
  Binbuf.raw cie "zR\000";
  uleb_encode cie 1;
  uleb_encode cie 8;
  Binbuf.u8 cie 16;
  let cie_body = Bytes.to_string (Binbuf.contents cie) in
  Binbuf.u16 b (String.length cie_body);
  Binbuf.u16 b 0xFFFF;
  Binbuf.raw b cie_body;
  let nfdes = max 1 (ndies / 8) in
  for i = 0 to nfdes - 1 do
    let cfi = Binbuf.create () in
    Binbuf.u8 cfi (0x40 lor (i land 31));
    Binbuf.u8 cfi (0x80 lor 5);
    uleb_encode cfi 16;
    Binbuf.u8 cfi 12;
    uleb_encode cfi 7;
    uleb_encode cfi 8;
    Binbuf.u8 cfi 0;
    let cfi_body = Bytes.to_string (Binbuf.contents cfi) in
    Binbuf.u16 b (6 + String.length cfi_body);
    Binbuf.u16 b 0;
    Binbuf.u32 b (0x400000 + (i * 0x100));
    Binbuf.u16 b 0x80;
    Binbuf.raw b cfi_body
  done;
  Binbuf.u16 b 0;
  let frame_size = Binbuf.pos b - frame_off in
  (* .macro *)
  let macro_off = Binbuf.pos b in
  for i = 0 to max 1 (ndies / 6) do
    Binbuf.u8 b 1;
    uleb_encode b (10 + i);
    uleb_encode b (List.nth name_offsets (i mod List.length name_offsets));
    Binbuf.u8 b 2;
    uleb_encode b (List.nth name_offsets (i mod List.length name_offsets))
  done;
  Binbuf.u8 b 0;
  let macro_size = Binbuf.pos b - macro_off in
  (* patch the section table *)
  Binbuf.patch_u32 b 6 abbrev_off;
  Binbuf.patch_u16 b 10 nabbrevs;
  Binbuf.patch_u32 b 12 info_off;
  Binbuf.patch_u16 b 16 info_size;
  Binbuf.patch_u32 b 18 str_off;
  Binbuf.patch_u16 b 22 str_size;
  Binbuf.patch_u32 b 24 line_off;
  Binbuf.patch_u16 b 28 line_size;
  Binbuf.patch_u32 b 30 aranges_off;
  Binbuf.patch_u16 b 34 aranges_size;
  Binbuf.patch_u32 b 36 frame_off;
  Binbuf.patch_u16 b 40 frame_size;
  Binbuf.patch_u32 b 42 macro_off;
  Binbuf.patch_u16 b 46 macro_size;
  Binbuf.contents b

let seed_small () = build_seed ~nabbrevs:2 ~ndies:4 ~nlineops:12 ~strpad:8
let seed_large () = build_seed ~nabbrevs:8 ~ndies:120 ~nlineops:400 ~strpad:2500

let seeds () =
  [
    ("small", seed_small ());
    ("large", seed_large ());
    ("mid", build_seed ~nabbrevs:4 ~ndies:30 ~nlineops:80 ~strpad:512);
    ("wide", build_seed ~nabbrevs:8 ~ndies:60 ~nlineops:200 ~strpad:2048);
  ]
