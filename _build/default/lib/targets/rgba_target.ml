(* tiff2rgba analog — the paper's headline case study (§IV-C, Fig. 6).

   The CIELab conversion path reads h*w*3 bytes from a fixed 257-byte
   strip buffer with no bound check: exactly putcontig8bitCIELab from
   libtiff-4.0.6, where w and h come from the file and pp points to a
   fixed-size buffer. The RGB and grayscale paths are bounds-checked, so
   the only fault is in the deep CIELab phase. *)

let name = "tiff2rgba"
let package = "libtiff-4.0.6"

let planted_bugs = [ ("cielab-oob-read", "oob-read") ]

let body =
  {|
// ---------------- tiff2rgba driver ----------------

// putcontig8bitCIELab analog.
// BUG(cielab-oob-read, oob-read): reads pp[j], pp[j+1], pp[j+2] for
// h * w pixels from a 257-byte buffer with no bound check.
fn put_cielab(w, h, pp, cp, cap) {
  var j = 0;
  var y = h;
  while (y > 0) {
    var x = w;
    while (x > 0) {
      var l = pp[j];
      var a = pp[j + 1];
      var bb = pp[j + 2];
      var r = t8(l + a);
      var g = t8(l - bb);
      var b2 = t8(l + bb - a);
      if (j + 2 < cap) {
        cp[j] = r;
        cp[j + 1] = g;
        cp[j + 2] = b2;
      }
      j = j + 3;
      x = x - 1;
    }
    y = y - 1;
  }
  return j;
}

// bounds-checked RGB path
fn put_rgb(w, h, pp, plen, cp, cap) {
  var j = 0;
  var total = w * h * 3;
  while (j + 2 < total && j + 2 < plen && j + 2 < cap) {
    cp[j] = pp[j];
    cp[j + 1] = pp[j + 1];
    cp[j + 2] = pp[j + 2];
    j = j + 3;
  }
  return j;
}

// palette path: pixel bytes index a colormap carried in the strip head
fn put_palette(w, h, pp, plen, cp, cap, cmap_entries) {
  var j = 0;
  var total = w * h;
  var cmap_bytes = cmap_entries * 3;
  while (j < total && cmap_bytes + j < plen && j * 3 + 2 < cap) {
    var pix = pp[cmap_bytes + j];
    if (pix <u cmap_entries) {
      cp[j * 3] = pp[pix * 3];
      cp[j * 3 + 1] = pp[pix * 3 + 1];
      cp[j * 3 + 2] = pp[pix * 3 + 2];
    } else {
      out(7010);
    }
    j = j + 1;
  }
  return j;
}

// separated (CMYK) path, bounds-checked
fn put_cmyk(w, h, pp, plen, cp, cap) {
  var j = 0;
  var total = w * h;
  while (j * 4 + 3 < plen && j < total && j * 3 + 2 < cap) {
    var c = pp[j * 4];
    var m = pp[j * 4 + 1];
    var y = pp[j * 4 + 2];
    var k = pp[j * 4 + 3];
    cp[j * 3] = t8((255 - c) * (255 - k) / 255);
    cp[j * 3 + 1] = t8((255 - m) * (255 - k) / 255);
    cp[j * 3 + 2] = t8((255 - y) * (255 - k) / 255);
    j = j + 1;
  }
  return j;
}

// YCbCr path, bounds-checked integer conversion
fn put_ycbcr(w, h, pp, plen, cp, cap) {
  var j = 0;
  var total = w * h;
  while (j * 3 + 2 < plen && j < total && j * 3 + 2 < cap) {
    var yy = pp[j * 3];
    var cb = pp[j * 3 + 1] - 128;
    var cr = pp[j * 3 + 2] - 128;
    var r = yy + cr + cr / 2;
    var g = yy - cb / 3 - cr / 2;
    var bl = yy + cb + cb / 4;
    if (r < 0) { r = 0; }
    if (r > 255) { r = 255; }
    if (g < 0) { g = 0; }
    if (g > 255) { g = 255; }
    if (bl < 0) { bl = 0; }
    if (bl > 255) { bl = 255; }
    cp[j * 3] = r;
    cp[j * 3 + 1] = g;
    cp[j * 3 + 2] = bl;
    j = j + 1;
  }
  return j;
}


// bounds-checked grayscale path
fn put_gray(w, h, pp, plen, cp, cap) {
  var j = 0;
  var total = w * h;
  while (j < total && j < plen && j < cap) {
    cp[j] = pp[j];
    j = j + 1;
  }
  return j;
}

fn main() {
  var ifd = tiff_check_header();
  if (ifd < 0) { out(7000); return 1; }
  var fields = alloc(24);
  if (tiff_parse_ifd(ifd, fields) == 0) { return 1; }
  if (tiff_validate(fields) == 0) { return 1; }
  var w = ld16(fields);
  var h = ld16(fields + 2);
  var photometric = ld16(fields + 8);
  var strip_off = ld16(fields + 10);
  var strip_len = ld16(fields + 14);
  var compression = ld16(fields + 6);
  var orientation = ld16(fields + 16);
  var cmap_entries = ld16(fields + 18);
  describe_orientation(orientation);
  // the strip buffer is a fixed 257 bytes, as in the case study
  var pp = alloc(257);
  if (compression == 5) {
    unpack_bits(strip_off, strip_len, pp, 257);
  } else {
    copy_in(pp, 0, strip_off, imin(strip_len, 257));
  }
  var cp = alloc(4096);
  var produced = 0;
  if (photometric == 8) {
    produced = put_cielab(w, h, pp, cp, 4096);
  } else { if (photometric == 2) {
    produced = put_rgb(w, h, pp, 257, cp, 4096);
  } else { if (photometric == 3) {
    if (cmap_entries == 0 || cmap_entries > 64) { out(7012); return 1; }
    produced = put_palette(w, h, pp, 257, cp, 4096, cmap_entries);
  } else { if (photometric == 5) {
    produced = put_cmyk(w, h, pp, 257, cp, 4096);
  } else { if (photometric == 6) {
    produced = put_ycbcr(w, h, pp, 257, cp, 4096);
  } else { if (photometric == 1 || photometric == 0) {
    produced = put_gray(w, h, pp, 257, cp, 4096);
  } else {
    out(7006);
    return 1;
  } } } } } }
  out(produced);
  out(77779);
  return 0;
}
|}

let source = Prelude.wrap (Tiff_common.header_source ^ body)

(* Benign seed: a small CIELab image whose h*w*3 fits the 257-byte buffer. *)
let seed_small () =
  Tiff_common.build_file
    [ (256, 5); (257, 4); (258, 8); (262, 8) ]
    ~strip:(String.init 60 (fun i -> Char.chr (i * 4 land 0xFF)))

let seed_large () =
  Tiff_common.build_file
    [ (256, 9); (257, 9); (258, 8); (262, 8) ]
    ~strip:(String.init 243 (fun i -> Char.chr (i * 7 land 0xFF)))

(* The buggy seed reproduces Fig. 5(b): h*w*3 = 270 > 257. *)
let seed_buggy () =
  Tiff_common.build_file
    [ (256, 10); (257, 9); (258, 8); (262, 8) ]
    ~strip:(String.init 243 (fun i -> Char.chr (i * 7 land 0xFF)))

let seeds () =
  [
    ("small", seed_small ());
    ("large", seed_large ());
    ( "rgb",
      Tiff_common.build_file
        [ (256, 8); (257, 8); (258, 8); (262, 2) ]
        ~strip:(String.make 192 'x') );
    ( "palette",
      (* 8-entry colormap followed by pixel indices below 8 *)
      Tiff_common.build_file
        [ (256, 8); (257, 8); (258, 8); (262, 3); (320, 8); (274, 5) ]
        ~strip:
          (String.init 24 (fun i -> Char.chr ((i * 10) land 0xFF))
          ^ String.init 64 (fun i -> Char.chr (i mod 8))) );
    ( "cmyk",
      Tiff_common.build_file
        [ (256, 7); (257, 6); (258, 8); (262, 5); (274, 3) ]
        ~strip:(String.init 168 (fun i -> Char.chr ((i * 5) land 0xFF))) );
    ( "ycbcr-packbits",
      (* packbits: a repeat run then literals *)
      Tiff_common.build_file
        [ (256, 6); (257, 6); (258, 8); (259, 5); (262, 6); (274, 6) ]
        ~strip:
          ("\xc0a"
          ^ "\x0f" ^ String.init 16 (fun i -> Char.chr (100 + i))
          ^ "\xd0b" ^ "\x07" ^ String.init 8 (fun i -> Char.chr (50 + (i * 9)))) );
  ]
