(** tiff2bw analog: grayscale conversion with a samples-per-pixel
    overrun and an off-by-one inversion row bound. *)

val name : string
val package : string

val source : string
(** Complete MiniC source (prelude included). *)

val planted_bugs : (string * string) list
(** (label, fault kind) ground truth; labels match the BUG(...) source
    annotations. *)

val seeds : unit -> (string * bytes) list
(** Labelled benign seeds; every one runs to a clean exit. *)

val seed_small : unit -> bytes
val seed_large : unit -> bytes

val seed_buggy_spp : unit -> bytes
(** Three samples per pixel over a one-sample buffer: spp oob-read. *)
