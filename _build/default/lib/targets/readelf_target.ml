(* readelf analog over the synthetic "SELF" object format.

   Layout (all little-endian):
     header, 32 bytes:
       0..3   magic 0x7F 'S' 'E' 'L'
       4      class (1 or 2)          5      endianness (must be 1)
       6..7   e_type (1..4)           8..9   e_machine
       10..11 e_phnum                 12..13 e_shnum
       14..17 e_phoff                 18..21 e_shoff
       22..25 e_stroff                26..27 e_strsize
       28..29 reserved                30..31 e_flags
     program header, 8 bytes:  p_type, p_off, p_size, p_flags (u16 each)
     section header, 12 bytes: sh_name u16, sh_type u16, sh_off u32,
                               sh_size u16, sh_link u16
     symbol, 8 bytes:          st_name u16, st_value u32, st_info u8,
                               st_other u8
     dynamic entry, 4 bytes:   d_tag u16, d_val u16 (tag 0 terminates)

   Like the paper's readelf, execution progresses in stages: file header,
   program/section header tables (input-count-bounded loops — the trap
   phases), then per-section content processing (symbols, dynamic
   entries, hex dumps). Four bugs are planted, mirroring the four unknown
   readelf bugs in Table III; each is a genuine memory-safety violation
   detected by the engine's oracles, reachable only in the deep stages. *)

let name = "readelf"
let package = "binutils-2.26"

(* (label, fault kind the oracles report) *)
let planted_bugs =
  [
    ("strtab-name-oob-read", "oob-read");
    ("symbol-version-oob-write", "oob-write");
    ("dynamic-strtab-oob-read", "oob-read");
    ("note-alloc-overflow", "oob-write");
  ]

let body =
  {|
// ---------------- readelf analog (SELF format) ----------------

fn check_magic() {
  if (in(0) != 0x7F) { return 0; }
  if (in(1) != 'S') { return 0; }
  if (in(2) != 'E') { return 0; }
  if (in(3) != 'L') { return 0; }
  return 1;
}

fn process_file_header() {
  if (check_magic() == 0) { out(9001); return 0; }
  var class = in(4);
  if (class != 1 && class != 2) { out(9002); return 0; }
  if (in(5) != 1) { out(9003); return 0; }
  var etype = iu16(6);
  if (etype == 0 || etype > 4) { out(9004); return 0; }
  out(etype);
  out(iu16(8));
  return 1;
}

fn checksum_segment(off, size) {
  var sum = 0;
  var i = 0;
  while (i < size) {
    sum = t16(sum + in(off + i));
    i = i + 1;
  }
  return sum;
}

// BUG(note-alloc-overflow, oob-write): namesz * 3 is truncated to 8 bits
// before allocation, but the write index is not.
fn process_note(off, size) {
  if (size < 4) { return 0; }
  var namesz = iu16(off);
  var descsz = iu16(off + 2);
  var nbuf = alloc(imax(t8(namesz * 3), 1));
  if (namesz > 0 && namesz <= size) {
    nbuf[namesz * 3 - 1] = 0x4E;
  }
  out(descsz);
  return 0;
}

fn process_program_headers(phnum, phoff) {
  var i = 0;
  while (i < phnum) {
    var base = phoff + i * 8;
    var ptype = iu16(base);
    var poff = iu16(base + 2);
    var psize = iu16(base + 4);
    if (ptype > 8) {
      out(9010);
    } else {
      out(ptype);
      if (ptype == 1) { out(checksum_segment(poff, psize)); }
      if (ptype == 4) { process_note(poff, psize); }
    }
    i = i + 1;
  }
  return 0;
}

// BUG(strtab-name-oob-read, oob-read): the scan for the terminating NUL
// never checks the table bound, so an unterminated name reads past it.
fn read_name(strtab, name_off) {
  var len = 0;
  while (strtab[name_off + len] != 0) {
    len = len + 1;
  }
  return len;
}

fn process_section_headers(shnum, shoff, strtab, strsize) {
  var i = 0;
  while (i < shnum) {
    var base = shoff + i * 12;
    var sname = iu16(base);
    var stype = iu16(base + 2);
    out(stype);
    if (sname <u strsize) { out(read_name(strtab, sname)); }
    i = i + 1;
  }
  return 0;
}

// The paper's Fig. 2: this function can return before its loop, letting
// some paths bypass the trap and touch the next phase early.
fn process_section_groups(shnum, flags) {
  if ((flags & 1) == 0) { return 1; }
  if (shnum == 0) { out(9020); return 1; }
  var i = 0;
  while (i < shnum) {
    out(i);
    i = i + 1;
  }
  return 0;
}

// machine-specific relocation names, as in readelf's per-arch tables
fn reloc_name(machine, rtype) {
  if (machine == 62) {
    if (rtype == 1) { return 1001; }
    if (rtype == 2) { return 1002; }
    if (rtype == 4) { return 1004; }
    if (rtype == 6) { return 1006; }
    if (rtype == 7) { return 1007; }
    return 1000;
  }
  if (machine == 40) {
    if (rtype == 1) { return 2001; }
    if (rtype == 2) { return 2002; }
    if (rtype == 3) { return 2003; }
    if (rtype == 10) { return 2010; }
    return 2000;
  }
  if (machine == 8) {
    if (rtype == 4) { return 3004; }
    if (rtype == 5) { return 3005; }
    if (rtype == 9) { return 3009; }
    return 3000;
  }
  return 9999;
}

// relocation section: entries of (r_off u32, r_type u16, r_sym u16)
fn process_relocs(off, size, machine) {
  var count = size / 8;
  var i = 0;
  while (i < count) {
    var base = off + i * 8;
    var r_off = iu32(base);
    var r_type = iu16(base + 4);
    var r_sym = iu16(base + 6);
    out(reloc_name(machine, r_type));
    if (r_off > 0x100000) { out(9030); }
    out(r_sym);
    i = i + 1;
  }
  return 0;
}

// hash section: nbucket u16, nchain u16, then buckets and chains
fn process_hash(off, size) {
  if (size < 4) { out(9040); return 0; }
  var nbucket = iu16(off);
  var nchain = iu16(off + 2);
  if (4 + nbucket * 2 + nchain * 2 > size) { out(9041); return 0; }
  var lengths = alloc(64);
  var i = 0;
  while (i < nbucket) {
    var b = iu16(off + 4 + i * 2);
    var depth = 0;
    var guard = 0;
    // follow the chain, counting depth
    while (b != 0 && guard < 32) {
      if (b >= nchain) { out(9042); break; }
      b = iu16(off + 4 + nbucket * 2 + b * 2);
      depth = depth + 1;
      guard = guard + 1;
    }
    if (depth < 64) { lengths[depth] = t8(lengths[depth] + 1); }
    i = i + 1;
  }
  // histogram, as readelf prints for --histogram
  var d = 0;
  while (d < 8) {
    out(lengths[d]);
    d = d + 1;
  }
  return 0;
}

// version symbol section: one u16 per symbol, printed decoded
fn process_versym(off, size) {
  var count = size / 2;
  var i = 0;
  while (i < count) {
    var v = iu16(off + i * 2);
    if (v == 0) { out(9050); }
    else { if (v == 1) { out(9051); }
    else { if ((v & 0x8000) != 0) { out(9052); }
    else { out(v); } } }
    i = i + 1;
  }
  return 0;
}

// section group: flags u16 then member section indices
fn process_group_section(off, size, shnum) {
  if (size < 2) { return 0; }
  var gflags = iu16(off);
  if ((gflags & 1) != 0) { out(9060); }
  var count = (size - 2) / 2;
  var i = 0;
  while (i < count) {
    var member = iu16(off + 2 + i * 2);
    if (member >= shnum) { out(9061); }
    else { out(member); }
    i = i + 1;
  }
  return 0;
}

fn symbol_kind_name(info) {
  var bind = info >> 4;
  var kind = info & 15;
  var code = 0;
  if (bind == 0) { code = 100; }
  else { if (bind == 1) { code = 200; }
  else { if (bind == 2) { code = 300; }
  else { code = 400; } } }
  if (kind == 0) { return code + 1; }
  if (kind == 1) { return code + 2; }
  if (kind == 2) { return code + 3; }
  if (kind == 3) { return code + 4; }
  if (kind == 4) { return code + 5; }
  return code + 9;
}

fn process_symbols(off, size, strtab, strsize) {
  var count = size / 8;
  var vbuf = alloc(16);
  var i = 0;
  while (i < count) {
    var sbase = off + i * 8;
    var sname = iu16(sbase);
    var svalue = iu32(sbase + 2);
    var sinfo = in(sbase + 6);
    var sother = in(sbase + 7);
    if (sname <u strsize) { out(read_name(strtab, sname)); }
    // BUG(symbol-version-oob-write, oob-write): st_other indexes a fixed
    // 16-entry version table without a bound check.
    vbuf[sother] = 1;
    out(symbol_kind_name(sinfo));
    out(svalue + sinfo);
    i = i + 1;
  }
  return 0;
}

fn process_dynamic(off, strtab) {
  var i = 0;
  while (i < 64) {
    var tag = iu16(off + i * 4);
    var val = iu16(off + i * 4 + 2);
    if (tag == 0) { return 0; }
    if (tag == 1) {
      // BUG(dynamic-strtab-oob-read, oob-read): NEEDED entries index the
      // string table without a bound check.
      out(strtab[val]);
    } else {
      out(val);
    }
    i = i + 1;
  }
  return 0;
}

fn dump_section(off, size) {
  var i = 0;
  var sum = 0;
  while (i < size) {
    sum = t16(sum + in(off + i) * 31);
    i = i + 1;
  }
  out(sum);
  return 0;
}

fn main() {
  if (process_file_header() == 0) { return 1; }
  var phnum = iu16(10);
  var shnum = iu16(12);
  var phoff = iu32(14);
  var shoff = iu32(18);
  var stroff = iu32(22);
  var strsize = iu16(26);
  var flags = iu16(30);
  if (phnum > 1024) { out(9005); return 1; }
  if (shnum > 1024) { out(9006); return 1; }
  var size = in_size();
  if (phnum > 0 && (phoff < 32 || phoff + phnum * 8 > size)) { out(9007); return 1; }
  if (shnum > 0 && (shoff < 32 || shoff + shnum * 12 > size)) { out(9008); return 1; }
  if (strsize > 0 && (stroff < 32 || stroff + strsize > size)) { out(9009); return 1; }
  var strtab = alloc(imax(strsize, 1));
  copy_in(strtab, 0, stroff, strsize);
  // stage 1: header tables (the trap loops end with e_phnum/e_shnum)
  process_program_headers(phnum, phoff);
  process_section_headers(shnum, shoff, strtab, strsize);
  process_section_groups(shnum, flags);
  // stage 2: per-section contents, dispatched on section type as
  // readelf's process_section_contents does
  var machine = iu16(8);
  var i = 0;
  while (i < shnum) {
    var base = shoff + i * 12;
    var stype = iu16(base + 2);
    var soff = iu32(base + 4);
    var ssize = iu16(base + 8);
    switch (stype) {
      case 1: { dump_section(soff, ssize); }
      case 2: { process_symbols(soff, ssize, strtab, strsize); }
      case 4: { process_relocs(soff, ssize, machine); }
      case 5: { process_hash(soff, ssize); }
      case 6: { process_dynamic(soff, strtab); }
      case 7: { dump_section(soff, ssize); }
      case 8: { process_versym(soff, ssize); }
      case 9: { process_group_section(soff, ssize, shnum); }
      default: { out(9098); }
    }
    i = i + 1;
  }
  out(77777);
  return 0;
}
|}

let source = Prelude.wrap body

(* --- seeds ----------------------------------------------------------------- *)

(* A consistent SELF file: [nsections] PROGBITS data sections plus a
   SYMTAB, a DYNAMIC and a NOTE-carrying program header; string table with
   NUL-terminated names. [data_size] pads each PROGBITS section. *)
let build_seed ~nsections ~nsymbols ~data_size =
  let b = Binbuf.create () in
  (* header: patch offsets later *)
  Binbuf.u8 b 0x7F;
  Binbuf.raw b "SEL";
  Binbuf.u8 b 1;
  (* class *)
  Binbuf.u8 b 1;
  (* endianness *)
  Binbuf.u16 b 2;
  (* e_type *)
  Binbuf.u16 b 62;
  (* e_machine *)
  let phnum = 2 in
  let shnum = nsections + 6 in
  Binbuf.u16 b phnum;
  Binbuf.u16 b shnum;
  Binbuf.u32 b 0;
  (* e_phoff, patched *)
  Binbuf.u32 b 0;
  (* e_shoff, patched *)
  Binbuf.u32 b 0;
  (* e_stroff, patched *)
  Binbuf.u16 b 0;
  (* e_strsize, patched *)
  Binbuf.u16 b 0;
  (* reserved *)
  Binbuf.u16 b 1;
  (* e_flags: bit 0 set so section groups run *)
  assert (Binbuf.pos b = 32);
  (* string table *)
  let names =
    ".text\000" :: ".symtab\000" :: ".dynamic\000" :: ".rela\000" :: ".hash\000"
    :: ".versym\000" :: ".group\000"
    :: List.init nsections (fun i -> Printf.sprintf ".data%d\000" i)
  in
  let stroff = Binbuf.pos b in
  let name_offsets =
    let off = ref 0 in
    List.map
      (fun n ->
        let o = !off in
        off := !off + String.length n;
        o)
      names
  in
  List.iter (Binbuf.raw b) names;
  let strsize = Binbuf.pos b - stroff in
  (* symbol table contents *)
  let symoff = Binbuf.pos b in
  for i = 0 to nsymbols - 1 do
    Binbuf.u16 b (List.nth name_offsets (i mod List.length name_offsets));
    Binbuf.u32 b (0x1000 + (i * 16));
    Binbuf.u8 b (i land 3);
    Binbuf.u8 b (i mod 8)
    (* st_other stays < 16: benign *)
  done;
  let symsize = Binbuf.pos b - symoff in
  (* dynamic section contents *)
  let dynoff = Binbuf.pos b in
  Binbuf.u16 b 1;
  Binbuf.u16 b (List.nth name_offsets 0);
  Binbuf.u16 b 2;
  Binbuf.u16 b 0x10;
  Binbuf.u16 b 0;
  Binbuf.u16 b 0;
  (* terminator *)
  (* relocation section: entries exercising the per-machine name tables *)
  let reloff = Binbuf.pos b in
  let nrelocs = max 2 (nsymbols / 2) in
  for i = 0 to nrelocs - 1 do
    Binbuf.u32 b (0x2000 + (i * 8));
    Binbuf.u16 b (1 + (i mod 7));
    Binbuf.u16 b (i mod max 1 nsymbols)
  done;
  let relsize = Binbuf.pos b - reloff in
  (* hash section: nbucket buckets, nchain chains *)
  let hashoff = Binbuf.pos b in
  let nbucket = 4 and nchain = max 4 nsymbols in
  Binbuf.u16 b nbucket;
  Binbuf.u16 b nchain;
  for i = 0 to nbucket - 1 do
    Binbuf.u16 b ((i + 1) mod nchain)
  done;
  for i = 0 to nchain - 1 do
    Binbuf.u16 b (if i + 2 < nchain && i mod 3 = 0 then i + 2 else 0)
  done;
  let hashsize = Binbuf.pos b - hashoff in
  (* version symbol section *)
  let versymoff = Binbuf.pos b in
  for i = 0 to max 3 nsymbols - 1 do
    Binbuf.u16 b (match i mod 4 with 0 -> 0 | 1 -> 1 | 2 -> 0x8001 | _ -> 2 + i)
  done;
  let versymsize = Binbuf.pos b - versymoff in
  (* section group *)
  let groupoff = Binbuf.pos b in
  Binbuf.u16 b 1;
  for i = 0 to 3 do
    Binbuf.u16 b (i mod shnum)
  done;
  let groupsize = Binbuf.pos b - groupoff in
  (* note segment contents: namesz=4 (benign), descsz=4 *)
  let noteoff = Binbuf.pos b in
  Binbuf.u16 b 4;
  Binbuf.u16 b 4;
  Binbuf.raw b "CORE";
  Binbuf.fill b 0 4;
  let notesize = Binbuf.pos b - noteoff in
  (* data sections *)
  let dataoffs =
    List.init nsections (fun i ->
        let off = Binbuf.pos b in
        Binbuf.fill b (0x41 + (i mod 26)) data_size;
        off)
  in
  (* program headers: one PT_LOAD over the first data, one PT_NOTE *)
  let phoff = Binbuf.pos b in
  Binbuf.u16 b 1;
  (* PT_LOAD *)
  Binbuf.u16 b (match dataoffs with o :: _ -> o | [] -> 0);
  Binbuf.u16 b (min data_size 0xFFFF);
  Binbuf.u16 b 5;
  Binbuf.u16 b 4;
  (* PT_NOTE *)
  Binbuf.u16 b noteoff;
  Binbuf.u16 b notesize;
  Binbuf.u16 b 0;
  (* section headers *)
  let shoff = Binbuf.pos b in
  (* symtab *)
  Binbuf.u16 b (List.nth name_offsets 1);
  Binbuf.u16 b 2;
  Binbuf.u32 b symoff;
  Binbuf.u16 b symsize;
  Binbuf.u16 b 0;
  (* dynamic *)
  Binbuf.u16 b (List.nth name_offsets 2);
  Binbuf.u16 b 6;
  Binbuf.u32 b dynoff;
  Binbuf.u16 b 12;
  Binbuf.u16 b 0;
  (* rela *)
  Binbuf.u16 b (List.nth name_offsets 3);
  Binbuf.u16 b 4;
  Binbuf.u32 b reloff;
  Binbuf.u16 b relsize;
  Binbuf.u16 b 0;
  (* hash *)
  Binbuf.u16 b (List.nth name_offsets 4);
  Binbuf.u16 b 5;
  Binbuf.u32 b hashoff;
  Binbuf.u16 b hashsize;
  Binbuf.u16 b 0;
  (* versym *)
  Binbuf.u16 b (List.nth name_offsets 5);
  Binbuf.u16 b 8;
  Binbuf.u32 b versymoff;
  Binbuf.u16 b versymsize;
  Binbuf.u16 b 0;
  (* group *)
  Binbuf.u16 b (List.nth name_offsets 6);
  Binbuf.u16 b 9;
  Binbuf.u32 b groupoff;
  Binbuf.u16 b groupsize;
  Binbuf.u16 b 0;
  (* data sections *)
  List.iteri
    (fun i off ->
      Binbuf.u16 b (List.nth name_offsets (7 + i));
      Binbuf.u16 b 1;
      Binbuf.u32 b off;
      Binbuf.u16 b (min data_size 0xFFFF);
      Binbuf.u16 b 0)
    dataoffs;
  (* back-patch the header *)
  Binbuf.patch_u32 b 14 phoff;
  Binbuf.patch_u32 b 18 shoff;
  Binbuf.patch_u32 b 22 stroff;
  Binbuf.patch_u16 b 26 strsize;
  Binbuf.contents b

let seed_small () = build_seed ~nsections:2 ~nsymbols:3 ~data_size:48
let seed_large () = build_seed ~nsections:8 ~nsymbols:40 ~data_size:880

let seeds () =
  [
    ("small", seed_small ());
    ("large", seed_large ());
    ("tiny", build_seed ~nsections:1 ~nsymbols:1 ~data_size:8);
    ("medium", build_seed ~nsections:4 ~nsymbols:12 ~data_size:200);
  ]
