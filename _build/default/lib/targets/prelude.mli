(** The MiniC standard prelude shared by every target program. *)

val source : string
(** Little-endian input readers ([iu16]/[iu32]), buffer helpers
    ([copy_in]/[fill8]), [imin]/[imax], and ULEB128 decoding
    ([uleb]/[uleb_len]). *)

val wrap : string -> string
(** [wrap body] is [source ^ body] — a complete compilable program. *)
