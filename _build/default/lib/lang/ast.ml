(* Abstract syntax of MiniC, the small C-like language the target programs
   are written in (the role C-compiled-to-LLVM-bitcode plays for KLEE).

   All values are 64-bit integers; pointers are integers carrying the
   Mem.Ptr encoding; [base[index]] reads or writes one byte. Wider memory
   accesses, truncations, sign extensions and the input intrinsics are
   builtin functions resolved during lowering. *)

type pos = {
  line : int;
  col : int;
}

type unary_op =
  | Uneg
  | Ulognot (* !e: 1 when e = 0 *)
  | Ubitnot

type binary_op =
  | Badd
  | Bsub
  | Bmul
  | Bdiv (* unsigned; use the sdiv builtin for signed division *)
  | Brem (* unsigned *)
  | Band
  | Bor
  | Bxor
  | Bshl
  | Bshr (* logical *)
  | Bashr
  | Blt (* signed comparisons *)
  | Ble
  | Bgt
  | Bge
  | Bult (* unsigned comparisons *)
  | Bule
  | Bugt
  | Buge
  | Beq
  | Bne
  | Bland (* short-circuit *)
  | Blor

type expr = {
  e : expr_node;
  epos : pos;
}

and expr_node =
  | Int of int64
  | Var of string
  | Call of string * expr list
  | Index of expr * expr (* byte load at base + index *)
  | Unary of unary_op * expr
  | Binary of binary_op * expr * expr

type stmt = {
  s : stmt_node;
  spos : pos;
}

and stmt_node =
  | Svar of string * expr
  | Sassign of string * expr
  | Sstore of expr * expr * expr (* base, index, value: one byte *)
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sfor of stmt option * expr option * stmt option * stmt list
  | Sswitch of expr * (int64 * stmt list) list * stmt list
    (* scrutinee, (constant, body) arms, default body *)
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Shalt of string
  | Sexpr of expr

type func = {
  fname : string;
  params : string list;
  body : stmt list;
  fpos : pos;
}

type program = func list

let pos_to_string p = Printf.sprintf "line %d, column %d" p.line p.col
