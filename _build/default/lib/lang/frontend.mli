(** One-call MiniC compilation pipeline: lex, parse, check, lower,
    validate. *)

exception Error of string
(** Carries a rendered message including the source position. *)

val compile : ?main:string -> string -> Pbse_ir.Types.program
(** [compile src] compiles a MiniC source string whose entry function is
    [main] (default ["main"]). Raises {!Error}. *)

val compile_result : ?main:string -> string -> (Pbse_ir.Types.program, string) result
