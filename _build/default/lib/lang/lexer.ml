type token =
  | Tint of int64
  | Tident of string
  | Tstring of string
  | Tkw_fn
  | Tkw_var
  | Tkw_if
  | Tkw_else
  | Tkw_while
  | Tkw_for
  | Tkw_return
  | Tkw_break
  | Tkw_continue
  | Tkw_halt
  | Tkw_switch
  | Tkw_case
  | Tkw_default
  | Tcolon
  | Tlparen
  | Trparen
  | Tlbrace
  | Trbrace
  | Tlbracket
  | Trbracket
  | Tcomma
  | Tsemi
  | Tassign
  | Tplus
  | Tminus
  | Tstar
  | Tslash
  | Tpercent
  | Tamp
  | Tpipe
  | Tcaret
  | Ttilde
  | Tbang
  | Tshl
  | Tshr
  | Tashr
  | Tlt
  | Tle
  | Tgt
  | Tge
  | Tult
  | Tule
  | Tugt
  | Tuge
  | Teq
  | Tne
  | Tland
  | Tlor
  | Teof

type located = {
  tok : token;
  pos : Ast.pos;
}

exception Error of string * Ast.pos

let token_to_string = function
  | Tint v -> Printf.sprintf "integer %Ld" v
  | Tident s -> Printf.sprintf "identifier %s" s
  | Tstring s -> Printf.sprintf "string %S" s
  | Tkw_fn -> "fn"
  | Tkw_var -> "var"
  | Tkw_if -> "if"
  | Tkw_else -> "else"
  | Tkw_while -> "while"
  | Tkw_for -> "for"
  | Tkw_return -> "return"
  | Tkw_break -> "break"
  | Tkw_continue -> "continue"
  | Tkw_halt -> "halt"
  | Tkw_switch -> "switch"
  | Tkw_case -> "case"
  | Tkw_default -> "default"
  | Tcolon -> ":"
  | Tlparen -> "("
  | Trparen -> ")"
  | Tlbrace -> "{"
  | Trbrace -> "}"
  | Tlbracket -> "["
  | Trbracket -> "]"
  | Tcomma -> ","
  | Tsemi -> ";"
  | Tassign -> "="
  | Tplus -> "+"
  | Tminus -> "-"
  | Tstar -> "*"
  | Tslash -> "/"
  | Tpercent -> "%"
  | Tamp -> "&"
  | Tpipe -> "|"
  | Tcaret -> "^"
  | Ttilde -> "~"
  | Tbang -> "!"
  | Tshl -> "<<"
  | Tshr -> ">>"
  | Tashr -> ">>>"
  | Tlt -> "<"
  | Tle -> "<="
  | Tgt -> ">"
  | Tge -> ">="
  | Tult -> "<u"
  | Tule -> "<=u"
  | Tugt -> ">u"
  | Tuge -> ">=u"
  | Teq -> "=="
  | Tne -> "!="
  | Tland -> "&&"
  | Tlor -> "||"
  | Teof -> "end of input"

let keyword = function
  | "fn" -> Some Tkw_fn
  | "var" -> Some Tkw_var
  | "if" -> Some Tkw_if
  | "else" -> Some Tkw_else
  | "while" -> Some Tkw_while
  | "for" -> Some Tkw_for
  | "return" -> Some Tkw_return
  | "break" -> Some Tkw_break
  | "continue" -> Some Tkw_continue
  | "halt" -> Some Tkw_halt
  | "switch" -> Some Tkw_switch
  | "case" -> Some Tkw_case
  | "default" -> Some Tkw_default
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

type cursor = {
  src : string;
  mutable i : int;
  mutable line : int;
  mutable col : int;
}

let peek cur = if cur.i < String.length cur.src then Some cur.src.[cur.i] else None

let peek2 cur =
  if cur.i + 1 < String.length cur.src then Some cur.src.[cur.i + 1] else None

let advance cur =
  (match peek cur with
   | Some '\n' ->
     cur.line <- cur.line + 1;
     cur.col <- 1
   | Some _ -> cur.col <- cur.col + 1
   | None -> ());
  cur.i <- cur.i + 1

let pos cur = { Ast.line = cur.line; col = cur.col }

let error cur fmt = Printf.ksprintf (fun msg -> raise (Error (msg, pos cur))) fmt

let rec skip_trivia cur =
  match peek cur with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance cur;
    skip_trivia cur
  | Some '/' -> (
    match peek2 cur with
    | Some '/' ->
      let rec to_eol () =
        match peek cur with
        | Some '\n' | None -> ()
        | Some _ ->
          advance cur;
          to_eol ()
      in
      to_eol ();
      skip_trivia cur
    | Some '*' ->
      advance cur;
      advance cur;
      let rec to_close () =
        match (peek cur, peek2 cur) with
        | Some '*', Some '/' ->
          advance cur;
          advance cur
        | Some _, _ ->
          advance cur;
          to_close ()
        | None, _ -> error cur "unterminated comment"
      in
      to_close ();
      skip_trivia cur
    | Some _ | None -> ())
  | Some _ | None -> ()

let lex_number cur =
  let start = cur.i in
  let hex =
    peek cur = Some '0'
    && (peek2 cur = Some 'x' || peek2 cur = Some 'X')
  in
  if hex then begin
    advance cur;
    advance cur;
    let digits_start = cur.i in
    while (match peek cur with Some c -> is_hex c | None -> false) do
      advance cur
    done;
    if cur.i = digits_start then error cur "hexadecimal literal with no digits";
    Int64.of_string ("0x" ^ String.sub cur.src digits_start (cur.i - digits_start))
  end
  else begin
    while (match peek cur with Some c -> is_digit c | None -> false) do
      advance cur
    done;
    Int64.of_string (String.sub cur.src start (cur.i - start))
  end

let lex_char cur =
  advance cur;
  (* opening quote *)
  let c =
    match peek cur with
    | Some '\\' -> (
      advance cur;
      match peek cur with
      | Some 'n' -> '\n'
      | Some 't' -> '\t'
      | Some '0' -> '\000'
      | Some '\\' -> '\\'
      | Some '\'' -> '\''
      | Some c -> error cur "unknown escape \\%c" c
      | None -> error cur "unterminated character literal")
    | Some c -> c
    | None -> error cur "unterminated character literal"
  in
  advance cur;
  (match peek cur with
   | Some '\'' -> advance cur
   | Some _ | None -> error cur "unterminated character literal");
  Int64.of_int (Char.code c)

let lex_string cur =
  advance cur;
  (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | Some '"' -> advance cur
    | Some '\\' -> (
      advance cur;
      match peek cur with
      | Some 'n' ->
        Buffer.add_char buf '\n';
        advance cur;
        go ()
      | Some '"' ->
        Buffer.add_char buf '"';
        advance cur;
        go ()
      | Some '\\' ->
        Buffer.add_char buf '\\';
        advance cur;
        go ()
      | Some c -> error cur "unknown escape \\%c" c
      | None -> error cur "unterminated string")
    | Some c ->
      Buffer.add_char buf c;
      advance cur;
      go ()
    | None -> error cur "unterminated string"
  in
  go ();
  Buffer.contents buf

let lex_ident cur =
  let start = cur.i in
  while (match peek cur with Some c -> is_ident_char c | None -> false) do
    advance cur
  done;
  String.sub cur.src start (cur.i - start)

(* Unsigned comparison suffix: "<u", "<=u", ">u", ">=u". *)
let with_u cur unsigned signed =
  match peek cur with
  | Some 'u' ->
    advance cur;
    unsigned
  | Some _ | None -> signed

let next_token cur =
  skip_trivia cur;
  let p = pos cur in
  let simple tok =
    advance cur;
    { tok; pos = p }
  in
  match peek cur with
  | None -> { tok = Teof; pos = p }
  | Some c ->
    if is_digit c then { tok = Tint (lex_number cur); pos = p }
    else if c = '\'' then { tok = Tint (lex_char cur); pos = p }
    else if c = '"' then { tok = Tstring (lex_string cur); pos = p }
    else if is_ident_start c then begin
      let name = lex_ident cur in
      match keyword name with
      | Some kw -> { tok = kw; pos = p }
      | None -> { tok = Tident name; pos = p }
    end
    else begin
      match c with
      | '(' -> simple Tlparen
      | ')' -> simple Trparen
      | '{' -> simple Tlbrace
      | '}' -> simple Trbrace
      | '[' -> simple Tlbracket
      | ']' -> simple Trbracket
      | ',' -> simple Tcomma
      | ';' -> simple Tsemi
      | ':' -> simple Tcolon
      | '+' -> simple Tplus
      | '-' -> simple Tminus
      | '*' -> simple Tstar
      | '/' -> simple Tslash
      | '%' -> simple Tpercent
      | '^' -> simple Tcaret
      | '~' -> simple Ttilde
      | '&' ->
        advance cur;
        if peek cur = Some '&' then begin
          advance cur;
          { tok = Tland; pos = p }
        end
        else { tok = Tamp; pos = p }
      | '|' ->
        advance cur;
        if peek cur = Some '|' then begin
          advance cur;
          { tok = Tlor; pos = p }
        end
        else { tok = Tpipe; pos = p }
      | '!' ->
        advance cur;
        if peek cur = Some '=' then begin
          advance cur;
          { tok = Tne; pos = p }
        end
        else { tok = Tbang; pos = p }
      | '=' ->
        advance cur;
        if peek cur = Some '=' then begin
          advance cur;
          { tok = Teq; pos = p }
        end
        else { tok = Tassign; pos = p }
      | '<' ->
        advance cur;
        (match peek cur with
         | Some '<' ->
           advance cur;
           { tok = Tshl; pos = p }
         | Some '=' ->
           advance cur;
           { tok = with_u cur Tule Tle; pos = p }
         | Some _ | None -> { tok = with_u cur Tult Tlt; pos = p })
      | '>' ->
        advance cur;
        (match peek cur with
         | Some '>' ->
           advance cur;
           if peek cur = Some '>' then begin
             advance cur;
             { tok = Tashr; pos = p }
           end
           else { tok = Tshr; pos = p }
         | Some '=' ->
           advance cur;
           { tok = with_u cur Tuge Tge; pos = p }
         | Some _ | None -> { tok = with_u cur Tugt Tgt; pos = p })
      | c -> error cur "unexpected character %C" c
    end

let tokenize src =
  let cur = { src; i = 0; line = 1; col = 1 } in
  let rec go acc =
    let t = next_token cur in
    if t.tok = Teof then List.rev (t :: acc) else go (t :: acc)
  in
  go []
