(** Hand-written lexer for MiniC.

    Supports decimal, hexadecimal ([0x..]) and character ([{'c'}])
    integer literals, string literals (for [halt] messages), [//] and
    [/* */] comments, and tracks line/column positions for error
    reporting. *)

type token =
  | Tint of int64
  | Tident of string
  | Tstring of string
  | Tkw_fn
  | Tkw_var
  | Tkw_if
  | Tkw_else
  | Tkw_while
  | Tkw_for
  | Tkw_return
  | Tkw_break
  | Tkw_continue
  | Tkw_halt
  | Tkw_switch
  | Tkw_case
  | Tkw_default
  | Tcolon
  | Tlparen
  | Trparen
  | Tlbrace
  | Trbrace
  | Tlbracket
  | Trbracket
  | Tcomma
  | Tsemi
  | Tassign
  | Tplus
  | Tminus
  | Tstar
  | Tslash
  | Tpercent
  | Tamp
  | Tpipe
  | Tcaret
  | Ttilde
  | Tbang
  | Tshl
  | Tshr
  | Tashr (* >>> *)
  | Tlt
  | Tle
  | Tgt
  | Tge
  | Tult (* <u *)
  | Tule (* <=u *)
  | Tugt (* >u *)
  | Tuge (* >=u *)
  | Teq
  | Tne
  | Tland
  | Tlor
  | Teof

type located = {
  tok : token;
  pos : Ast.pos;
}

exception Error of string * Ast.pos

val tokenize : string -> located list
(** Raises [Error] on malformed input. The result ends with [Teof]. *)

val token_to_string : token -> string
