(** Lowering from the MiniC AST to IR.

    Performs the semantic checks (unknown identifiers and functions, arity
    mismatches, duplicate definitions, break/continue outside loops,
    builtin misuse) and emits IR through {!Pbse_ir.Builder}. Short-circuit
    [&&]/[||] and [assert] become control flow; builtin calls become the
    corresponding instructions (see the table in the library README). *)

exception Error of string * Ast.pos

val lower_program : Ast.program -> main:string -> Pbse_ir.Types.program
(** Raises [Error] on a semantic error and [Invalid_argument] when [main]
    is missing. *)

val builtin_names : string list
(** Names resolved during lowering rather than as user functions. *)
