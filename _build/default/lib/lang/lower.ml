open Pbse_ir.Types
module Builder = Pbse_ir.Builder

exception Error of string * Ast.pos

let fail pos fmt = Printf.ksprintf (fun msg -> raise (Error (msg, pos))) fmt

(* name -> arity for builtins; the intrinsics in/in_size/out are included *)
let builtins =
  [
    ("in", 1); ("in_size", 0); ("out", 1); ("alloc", 1); ("free", 1);
    ("ld8", 1); ("ld16", 1); ("ld32", 1); ("ld64", 1);
    ("st8", 2); ("st16", 2); ("st32", 2); ("st64", 2);
    ("t8", 1); ("t16", 1); ("t32", 1); ("s8", 1); ("s16", 1); ("s32", 1);
    ("sdiv", 2); ("srem", 2); ("assert", 1);
  ]

let builtin_names = List.map fst builtins

type env = {
  fb : Builder.fb;
  signatures : (string, int) Hashtbl.t; (* user functions -> arity *)
  mutable scopes : (string, int) Hashtbl.t list;
  mutable loops : (string * string) list; (* continue target, break target *)
  mutable next_label : int;
}

let fresh_label env prefix =
  let n = env.next_label in
  env.next_label <- n + 1;
  Printf.sprintf "%s_%d" prefix n

let push_scope env = env.scopes <- Hashtbl.create 8 :: env.scopes

let pop_scope env =
  match env.scopes with
  | _ :: rest -> env.scopes <- rest
  | [] -> assert false

let declare env pos name =
  match env.scopes with
  | top :: _ ->
    if Hashtbl.mem top name then fail pos "variable %s already declared in this scope" name;
    let r = Builder.fresh_reg env.fb in
    Hashtbl.replace top name r;
    r
  | [] -> assert false

let lookup env pos name =
  let rec search = function
    | [] -> fail pos "unknown variable %s" name
    | scope :: rest -> (
      match Hashtbl.find_opt scope name with Some r -> r | None -> search rest)
  in
  search env.scopes

(* dst <- operand, as an addition with zero (the IR has no move) *)
let mov env dst op = Builder.emit env.fb (Bin (dst, Add, op, Const 0L))

let rec lower_expr env (expr : Ast.expr) : operand =
  let pos = expr.Ast.epos in
  match expr.Ast.e with
  | Ast.Int v -> Const v
  | Ast.Var name -> Reg (lookup env pos name)
  | Ast.Unary (op, a) -> (
    let oa = lower_expr env a in
    let dst = Builder.fresh_reg env.fb in
    (match op with
     | Ast.Uneg -> Builder.emit env.fb (Un (dst, Neg, oa))
     | Ast.Ubitnot -> Builder.emit env.fb (Un (dst, Not, oa))
     | Ast.Ulognot -> Builder.emit env.fb (Bin (dst, Eq, oa, Const 0L)));
    Reg dst)
  | Ast.Index (base, idx) ->
    let ob = lower_expr env base in
    let oi = lower_expr env idx in
    let addr = Builder.fresh_reg env.fb in
    Builder.emit env.fb (Bin (addr, Add, ob, oi));
    let dst = Builder.fresh_reg env.fb in
    Builder.emit env.fb (Load (dst, Reg addr, W1));
    Reg dst
  | Ast.Binary (Ast.Bland, a, b) -> lower_short_circuit env ~is_and:true a b
  | Ast.Binary (Ast.Blor, a, b) -> lower_short_circuit env ~is_and:false a b
  | Ast.Binary (op, a, b) -> (
    let oa = lower_expr env a in
    let ob = lower_expr env b in
    let dst = Builder.fresh_reg env.fb in
    let emit binop x y = Builder.emit env.fb (Bin (dst, binop, x, y)) in
    (match op with
     | Ast.Badd -> emit Add oa ob
     | Ast.Bsub -> emit Sub oa ob
     | Ast.Bmul -> emit Mul oa ob
     | Ast.Bdiv -> emit Udiv oa ob
     | Ast.Brem -> emit Urem oa ob
     | Ast.Band -> emit And oa ob
     | Ast.Bor -> emit Or oa ob
     | Ast.Bxor -> emit Xor oa ob
     | Ast.Bshl -> emit Shl oa ob
     | Ast.Bshr -> emit Lshr oa ob
     | Ast.Bashr -> emit Ashr oa ob
     | Ast.Beq -> emit Eq oa ob
     | Ast.Bne -> emit Ne oa ob
     | Ast.Blt -> emit Slt oa ob
     | Ast.Ble -> emit Sle oa ob
     | Ast.Bgt -> emit Slt ob oa
     | Ast.Bge -> emit Sle ob oa
     | Ast.Bult -> emit Ult oa ob
     | Ast.Bule -> emit Ule oa ob
     | Ast.Bugt -> emit Ult ob oa
     | Ast.Buge -> emit Ule ob oa
     | Ast.Bland | Ast.Blor -> assert false);
    Reg dst)
  | Ast.Call (name, args) -> lower_call env pos name args

and lower_short_circuit env ~is_and a b =
  let dst = Builder.fresh_reg env.fb in
  let rhs_l = fresh_label env "sc_rhs" in
  let skip_l = fresh_label env "sc_skip" in
  let join_l = fresh_label env "sc_join" in
  let oa = lower_expr env a in
  if is_and then Builder.br env.fb oa rhs_l skip_l
  else Builder.br env.fb oa skip_l rhs_l;
  Builder.start_block env.fb rhs_l;
  let ob = lower_expr env b in
  Builder.emit env.fb (Bin (dst, Ne, ob, Const 0L));
  Builder.jmp env.fb join_l;
  Builder.start_block env.fb skip_l;
  mov env dst (Const (if is_and then 0L else 1L));
  Builder.jmp env.fb join_l;
  Builder.start_block env.fb join_l;
  Reg dst

and lower_call env pos name args =
  let ops () = List.map (lower_expr env) args in
  let arity n =
    if List.length args <> n then
      fail pos "%s expects %d argument%s, got %d" name n
        (if n = 1 then "" else "s")
        (List.length args)
  in
  let unary_inst make =
    arity 1;
    match ops () with
    | [ a ] ->
      let dst = Builder.fresh_reg env.fb in
      Builder.emit env.fb (make dst a);
      Reg dst
    | _ -> assert false
  in
  let binary_inst make =
    arity 2;
    match ops () with
    | [ a; b ] ->
      let dst = Builder.fresh_reg env.fb in
      Builder.emit env.fb (make dst a b);
      Reg dst
    | _ -> assert false
  in
  match name with
  | "in" ->
    arity 1;
    let dst = Builder.fresh_reg env.fb in
    Builder.emit env.fb (Call (Some dst, "in_byte", ops ()));
    Reg dst
  | "in_size" ->
    arity 0;
    let dst = Builder.fresh_reg env.fb in
    Builder.emit env.fb (Call (Some dst, "in_size", []));
    Reg dst
  | "out" ->
    arity 1;
    let dst = Builder.fresh_reg env.fb in
    Builder.emit env.fb (Call (Some dst, "out", ops ()));
    Reg dst
  | "alloc" -> unary_inst (fun dst a -> Alloc (dst, a))
  | "free" ->
    arity 1;
    (match ops () with
     | [ a ] ->
       Builder.emit env.fb (Free a);
       Const 0L
     | _ -> assert false)
  | "ld8" -> unary_inst (fun dst a -> Load (dst, a, W1))
  | "ld16" -> unary_inst (fun dst a -> Load (dst, a, W2))
  | "ld32" -> unary_inst (fun dst a -> Load (dst, a, W4))
  | "ld64" -> unary_inst (fun dst a -> Load (dst, a, W8))
  | "st8" | "st16" | "st32" | "st64" ->
    arity 2;
    (match ops () with
     | [ addr; v ] ->
       let w =
         match name with
         | "st8" -> W1
         | "st16" -> W2
         | "st32" -> W4
         | _ -> W8
       in
       Builder.emit env.fb (Store (addr, v, w));
       Const 0L
     | _ -> assert false)
  | "t8" -> unary_inst (fun dst a -> Un (dst, Trunc8, a))
  | "t16" -> unary_inst (fun dst a -> Un (dst, Trunc16, a))
  | "t32" -> unary_inst (fun dst a -> Un (dst, Trunc32, a))
  | "s8" -> unary_inst (fun dst a -> Un (dst, Sext8, a))
  | "s16" -> unary_inst (fun dst a -> Un (dst, Sext16, a))
  | "s32" -> unary_inst (fun dst a -> Un (dst, Sext32, a))
  | "sdiv" -> binary_inst (fun dst a b -> Bin (dst, Sdiv, a, b))
  | "srem" -> binary_inst (fun dst a b -> Bin (dst, Srem, a, b))
  | "assert" ->
    arity 1;
    (match ops () with
     | [ cond ] ->
       let ok_l = fresh_label env "assert_ok" in
       let fail_l = fresh_label env "assert_fail" in
       Builder.br env.fb cond ok_l fail_l;
       Builder.start_block env.fb fail_l;
       Builder.halt env.fb
         (Printf.sprintf "assertion failed at %s" (Ast.pos_to_string pos));
       Builder.start_block env.fb ok_l;
       Const 0L
     | _ -> assert false)
  | _ -> (
    match Hashtbl.find_opt env.signatures name with
    | None -> fail pos "unknown function %s" name
    | Some n ->
      arity n;
      let dst = Builder.fresh_reg env.fb in
      Builder.emit env.fb (Call (Some dst, name, ops ()));
      Reg dst)

let rec lower_stmt env (stmt : Ast.stmt) =
  let pos = stmt.Ast.spos in
  (* statements after a terminator are unreachable but still lowered *)
  if Builder.is_terminated env.fb then
    Builder.start_block env.fb (fresh_label env "dead");
  match stmt.Ast.s with
  | Ast.Svar (name, value) ->
    let ov = lower_expr env value in
    let r = declare env pos name in
    mov env r ov
  | Ast.Sassign (name, value) ->
    let ov = lower_expr env value in
    let r = lookup env pos name in
    mov env r ov
  | Ast.Sstore (base, idx, value) ->
    let ob = lower_expr env base in
    let oi = lower_expr env idx in
    let addr = Builder.fresh_reg env.fb in
    Builder.emit env.fb (Bin (addr, Add, ob, oi));
    let ov = lower_expr env value in
    Builder.emit env.fb (Store (Reg addr, ov, W1))
  | Ast.Sif (cond, then_body, else_body) ->
    let oc = lower_expr env cond in
    let then_l = fresh_label env "then" in
    let else_l = fresh_label env "else" in
    let join_l = fresh_label env "join" in
    Builder.br env.fb oc then_l else_l;
    Builder.start_block env.fb then_l;
    lower_block env then_body;
    if not (Builder.is_terminated env.fb) then Builder.jmp env.fb join_l;
    Builder.start_block env.fb else_l;
    lower_block env else_body;
    if not (Builder.is_terminated env.fb) then Builder.jmp env.fb join_l;
    Builder.start_block env.fb join_l
  | Ast.Swhile (cond, body) ->
    let head_l = fresh_label env "while_head" in
    let body_l = fresh_label env "while_body" in
    let exit_l = fresh_label env "while_exit" in
    Builder.jmp env.fb head_l;
    Builder.start_block env.fb head_l;
    let oc = lower_expr env cond in
    Builder.br env.fb oc body_l exit_l;
    Builder.start_block env.fb body_l;
    env.loops <- (head_l, exit_l) :: env.loops;
    lower_block env body;
    env.loops <- List.tl env.loops;
    if not (Builder.is_terminated env.fb) then Builder.jmp env.fb head_l;
    Builder.start_block env.fb exit_l
  | Ast.Sfor (init, cond, step, body) ->
    push_scope env;
    (match init with Some s -> lower_stmt env s | None -> ());
    let head_l = fresh_label env "for_head" in
    let body_l = fresh_label env "for_body" in
    let step_l = fresh_label env "for_step" in
    let exit_l = fresh_label env "for_exit" in
    Builder.jmp env.fb head_l;
    Builder.start_block env.fb head_l;
    (match cond with
     | Some c ->
       let oc = lower_expr env c in
       Builder.br env.fb oc body_l exit_l
     | None -> Builder.jmp env.fb body_l);
    Builder.start_block env.fb body_l;
    env.loops <- (step_l, exit_l) :: env.loops;
    lower_block env body;
    env.loops <- List.tl env.loops;
    if not (Builder.is_terminated env.fb) then Builder.jmp env.fb step_l;
    Builder.start_block env.fb step_l;
    (match step with Some s -> lower_stmt env s | None -> ());
    if not (Builder.is_terminated env.fb) then Builder.jmp env.fb head_l;
    Builder.start_block env.fb exit_l;
    pop_scope env
  | Ast.Sswitch (scrutinee, arms, default_body) ->
    let oscrut = lower_expr env scrutinee in
    let join_l = fresh_label env "switch_join" in
    let default_l = fresh_label env "switch_default" in
    let cases =
      List.map (fun (v, _) -> (v, fresh_label env "switch_case")) arms
    in
    Builder.switch env.fb oscrut cases default_l;
    List.iter2
      (fun (_, label) (_, body) ->
        Builder.start_block env.fb label;
        lower_block env body;
        if not (Builder.is_terminated env.fb) then Builder.jmp env.fb join_l)
      cases arms;
    Builder.start_block env.fb default_l;
    lower_block env default_body;
    if not (Builder.is_terminated env.fb) then Builder.jmp env.fb join_l;
    Builder.start_block env.fb join_l
  | Ast.Sreturn value ->
    let ov = Option.map (lower_expr env) value in
    Builder.ret env.fb ov
  | Ast.Sbreak -> (
    match env.loops with
    | (_, exit_l) :: _ -> Builder.jmp env.fb exit_l
    | [] -> fail pos "break outside a loop")
  | Ast.Scontinue -> (
    match env.loops with
    | (continue_l, _) :: _ -> Builder.jmp env.fb continue_l
    | [] -> fail pos "continue outside a loop")
  | Ast.Shalt message -> Builder.halt env.fb message
  | Ast.Sexpr e -> ignore (lower_expr env e)

and lower_block env stmts =
  push_scope env;
  List.iter (lower_stmt env) stmts;
  pop_scope env

let lower_func signatures (f : Ast.func) =
  let fb = Builder.create_func ~name:f.Ast.fname ~nparams:(List.length f.Ast.params) in
  let env = { fb; signatures; scopes = []; loops = []; next_label = 0 } in
  push_scope env;
  List.iteri
    (fun i p ->
      match env.scopes with
      | top :: _ ->
        if Hashtbl.mem top p then fail f.Ast.fpos "duplicate parameter %s" p;
        Hashtbl.replace top p i
      | [] -> assert false)
    f.Ast.params;
  lower_block env f.Ast.body;
  if not (Builder.is_terminated env.fb) then Builder.ret env.fb (Some (Const 0L));
  Builder.finish_func fb

let lower_program (prog : Ast.program) ~main =
  let signatures = Hashtbl.create 32 in
  List.iter
    (fun (f : Ast.func) ->
      if Hashtbl.mem signatures f.Ast.fname then
        fail f.Ast.fpos "duplicate function %s" f.Ast.fname;
      if List.mem f.Ast.fname builtin_names || is_intrinsic f.Ast.fname then
        fail f.Ast.fpos "function %s shadows a builtin" f.Ast.fname;
      Hashtbl.replace signatures f.Ast.fname (List.length f.Ast.params))
    prog;
  let funcs = List.map (lower_func signatures) prog in
  Builder.program ~main funcs
