exception Error of string

let compile ?(main = "main") src =
  try Lower.lower_program (Parser.parse src) ~main with
  | Lexer.Error (msg, pos) ->
    raise (Error (Printf.sprintf "lexical error at %s: %s" (Ast.pos_to_string pos) msg))
  | Parser.Error (msg, pos) ->
    raise (Error (Printf.sprintf "parse error at %s: %s" (Ast.pos_to_string pos) msg))
  | Lower.Error (msg, pos) ->
    raise (Error (Printf.sprintf "error at %s: %s" (Ast.pos_to_string pos) msg))
  | Invalid_argument msg -> raise (Error msg)

let compile_result ?main src =
  match compile ?main src with
  | prog -> Ok prog
  | exception Error msg -> Error msg
