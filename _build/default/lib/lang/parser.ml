open Lexer

exception Error of string * Ast.pos

type parser_state = {
  toks : located array;
  mutable at : int;
}

let peek ps = ps.toks.(ps.at)
let pos ps = (peek ps).pos

let fail ps fmt =
  Printf.ksprintf (fun msg -> raise (Error (msg, pos ps))) fmt

let advance ps = ps.at <- ps.at + 1

let eat ps tok =
  if (peek ps).tok = tok then advance ps
  else fail ps "expected %s, found %s" (token_to_string tok) (token_to_string (peek ps).tok)

let eat_ident ps =
  match (peek ps).tok with
  | Tident name ->
    advance ps;
    name
  | t -> fail ps "expected identifier, found %s" (token_to_string t)

(* binary operator of a token, with its precedence level *)
let binop_of = function
  | Tlor -> Some (0, Ast.Blor)
  | Tland -> Some (1, Ast.Bland)
  | Tpipe -> Some (2, Ast.Bor)
  | Tcaret -> Some (3, Ast.Bxor)
  | Tamp -> Some (4, Ast.Band)
  | Teq -> Some (5, Ast.Beq)
  | Tne -> Some (5, Ast.Bne)
  | Tlt -> Some (6, Ast.Blt)
  | Tle -> Some (6, Ast.Ble)
  | Tgt -> Some (6, Ast.Bgt)
  | Tge -> Some (6, Ast.Bge)
  | Tult -> Some (6, Ast.Bult)
  | Tule -> Some (6, Ast.Bule)
  | Tugt -> Some (6, Ast.Bugt)
  | Tuge -> Some (6, Ast.Buge)
  | Tshl -> Some (7, Ast.Bshl)
  | Tshr -> Some (7, Ast.Bshr)
  | Tashr -> Some (7, Ast.Bashr)
  | Tplus -> Some (8, Ast.Badd)
  | Tminus -> Some (8, Ast.Bsub)
  | Tstar -> Some (9, Ast.Bmul)
  | Tslash -> Some (9, Ast.Bdiv)
  | Tpercent -> Some (9, Ast.Brem)
  | _ -> None

let max_level = 9

let rec parse_expr ps = parse_binary ps 0

and parse_binary ps level =
  if level > max_level then parse_unary ps
  else begin
    let left = ref (parse_binary ps (level + 1)) in
    let continue = ref true in
    while !continue do
      match binop_of (peek ps).tok with
      | Some (l, op) when l = level ->
        let p = pos ps in
        advance ps;
        let right = parse_binary ps (level + 1) in
        left := { Ast.e = Ast.Binary (op, !left, right); epos = p }
      | Some _ | None -> continue := false
    done;
    !left
  end

and parse_unary ps =
  let p = pos ps in
  match (peek ps).tok with
  | Tminus ->
    advance ps;
    { Ast.e = Ast.Unary (Ast.Uneg, parse_unary ps); epos = p }
  | Tbang ->
    advance ps;
    { Ast.e = Ast.Unary (Ast.Ulognot, parse_unary ps); epos = p }
  | Ttilde ->
    advance ps;
    { Ast.e = Ast.Unary (Ast.Ubitnot, parse_unary ps); epos = p }
  | _ -> parse_postfix ps

and parse_postfix ps =
  let base = parse_primary ps in
  let rec extend acc =
    match (peek ps).tok with
    | Tlbracket ->
      let p = pos ps in
      advance ps;
      let idx = parse_expr ps in
      eat ps Trbracket;
      extend { Ast.e = Ast.Index (acc, idx); epos = p }
    | _ -> acc
  in
  extend base

and parse_primary ps =
  let p = pos ps in
  match (peek ps).tok with
  | Tint v ->
    advance ps;
    { Ast.e = Ast.Int v; epos = p }
  | Tident name ->
    advance ps;
    if (peek ps).tok = Tlparen then begin
      advance ps;
      let args = parse_args ps in
      eat ps Trparen;
      { Ast.e = Ast.Call (name, args); epos = p }
    end
    else { Ast.e = Ast.Var name; epos = p }
  | Tlparen ->
    advance ps;
    let e = parse_expr ps in
    eat ps Trparen;
    e
  | t -> fail ps "expected expression, found %s" (token_to_string t)

and parse_args ps =
  if (peek ps).tok = Trparen then []
  else begin
    let first = parse_expr ps in
    let rec more acc =
      if (peek ps).tok = Tcomma then begin
        advance ps;
        more (parse_expr ps :: acc)
      end
      else List.rev acc
    in
    more [ first ]
  end

(* A "simple" statement: the assignment/expression forms allowed in for(...)
   headers; no trailing semicolon. *)
let rec parse_simple ps =
  let p = pos ps in
  match (peek ps).tok with
  | Tkw_var ->
    advance ps;
    let name = eat_ident ps in
    eat ps Tassign;
    let value = parse_expr ps in
    { Ast.s = Ast.Svar (name, value); spos = p }
  | _ -> (
    let e = parse_expr ps in
    match (peek ps).tok with
    | Tassign -> (
      advance ps;
      let value = parse_expr ps in
      match e.Ast.e with
      | Ast.Var name -> { Ast.s = Ast.Sassign (name, value); spos = p }
      | Ast.Index (base, idx) -> { Ast.s = Ast.Sstore (base, idx, value); spos = p }
      | Ast.Int _ | Ast.Call _ | Ast.Unary _ | Ast.Binary _ ->
        fail ps "left-hand side must be a variable or a byte index")
    | _ -> { Ast.s = Ast.Sexpr e; spos = p })

and parse_stmt ps =
  let p = pos ps in
  match (peek ps).tok with
  | Tkw_if ->
    advance ps;
    eat ps Tlparen;
    let cond = parse_expr ps in
    eat ps Trparen;
    let then_body = parse_block ps in
    let else_body =
      if (peek ps).tok = Tkw_else then begin
        advance ps;
        if (peek ps).tok = Tkw_if then [ parse_stmt ps ] else parse_block ps
      end
      else []
    in
    { Ast.s = Ast.Sif (cond, then_body, else_body); spos = p }
  | Tkw_while ->
    advance ps;
    eat ps Tlparen;
    let cond = parse_expr ps in
    eat ps Trparen;
    let body = parse_block ps in
    { Ast.s = Ast.Swhile (cond, body); spos = p }
  | Tkw_for ->
    advance ps;
    eat ps Tlparen;
    let init = if (peek ps).tok = Tsemi then None else Some (parse_simple ps) in
    eat ps Tsemi;
    let cond = if (peek ps).tok = Tsemi then None else Some (parse_expr ps) in
    eat ps Tsemi;
    let step = if (peek ps).tok = Trparen then None else Some (parse_simple ps) in
    eat ps Trparen;
    let body = parse_block ps in
    { Ast.s = Ast.Sfor (init, cond, step, body); spos = p }
  | Tkw_switch ->
    advance ps;
    eat ps Tlparen;
    let scrutinee = parse_expr ps in
    eat ps Trparen;
    eat ps Tlbrace;
    let arms = ref [] in
    let default = ref None in
    let rec arm_loop () =
      match (peek ps).tok with
      | Trbrace -> advance ps
      | Tkw_case -> (
        advance ps;
        match (peek ps).tok with
        | Tint v ->
          advance ps;
          eat ps Tcolon;
          let body = parse_block ps in
          if List.mem_assoc v !arms then fail ps "duplicate case %Ld" v;
          arms := (v, body) :: !arms;
          arm_loop ()
        | t -> fail ps "case expects an integer literal, found %s" (token_to_string t))
      | Tkw_default ->
        advance ps;
        eat ps Tcolon;
        (match !default with
         | Some _ -> fail ps "duplicate default arm"
         | None -> default := Some (parse_block ps));
        arm_loop ()
      | t -> fail ps "expected case, default or }, found %s" (token_to_string t)
    in
    arm_loop ();
    {
      Ast.s =
        Ast.Sswitch (scrutinee, List.rev !arms, Option.value ~default:[] !default);
      spos = p;
    }
  | Tkw_return ->
    advance ps;
    let value = if (peek ps).tok = Tsemi then None else Some (parse_expr ps) in
    eat ps Tsemi;
    { Ast.s = Ast.Sreturn value; spos = p }
  | Tkw_break ->
    advance ps;
    eat ps Tsemi;
    { Ast.s = Ast.Sbreak; spos = p }
  | Tkw_continue ->
    advance ps;
    eat ps Tsemi;
    { Ast.s = Ast.Scontinue; spos = p }
  | Tkw_halt ->
    advance ps;
    eat ps Tlparen;
    let message =
      match (peek ps).tok with
      | Tstring s ->
        advance ps;
        s
      | t -> fail ps "halt expects a string message, found %s" (token_to_string t)
    in
    eat ps Trparen;
    eat ps Tsemi;
    { Ast.s = Ast.Shalt message; spos = p }
  | _ ->
    let s = parse_simple ps in
    eat ps Tsemi;
    s

and parse_block ps =
  eat ps Tlbrace;
  let rec go acc =
    if (peek ps).tok = Trbrace then begin
      advance ps;
      List.rev acc
    end
    else go (parse_stmt ps :: acc)
  in
  go []

let parse_func ps =
  let p = pos ps in
  eat ps Tkw_fn;
  let name = eat_ident ps in
  eat ps Tlparen;
  let params =
    if (peek ps).tok = Trparen then []
    else begin
      let first = eat_ident ps in
      let rec more acc =
        if (peek ps).tok = Tcomma then begin
          advance ps;
          more (eat_ident ps :: acc)
        end
        else List.rev acc
      in
      more [ first ]
    end
  in
  eat ps Trparen;
  let body = parse_block ps in
  { Ast.fname = name; params; body; fpos = p }

let parse src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let ps = { toks; at = 0 } in
  let rec go acc =
    if (peek ps).tok = Teof then List.rev acc else go (parse_func ps :: acc)
  in
  go []
