lib/lang/frontend.mli: Pbse_ir
