lib/lang/lower.mli: Ast Pbse_ir
