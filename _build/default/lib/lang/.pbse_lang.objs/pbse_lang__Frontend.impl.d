lib/lang/frontend.ml: Ast Lexer Lower Parser Printf
