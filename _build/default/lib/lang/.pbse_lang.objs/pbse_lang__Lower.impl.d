lib/lang/lower.ml: Ast Hashtbl List Option Pbse_ir Printf
