(** Recursive-descent parser for MiniC.

    Precedence, lowest first:
    [||], [&&], [|], [^], [&], [== !=],
    [< <= > >= <u <=u >u >=u], [<< >> >>>], [+ -], [* / %];
    unary [! ~ -]; postfix call and byte indexing.

    Assignment is a statement, not an expression; [x = e;] assigns a
    variable and [b[i] = e;] stores a byte. *)

exception Error of string * Ast.pos

val parse : string -> Ast.program
(** Raises [Error] (or [Lexer.Error]) on malformed input. *)
