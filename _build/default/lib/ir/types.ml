(* The intermediate representation executed by every engine in this
   repository (concrete, concolic and symbolic).

   It plays the role LLVM bitcode plays for KLEE in the paper: a register
   machine over 64-bit values with byte-addressable memory, structured as
   functions of basic blocks ending in explicit terminators. Pointers are
   ordinary 64-bit values carrying an object id in the high 32 bits and a
   byte offset in the low 32 bits; the memory model decodes them. *)

type binop =
  | Add
  | Sub
  | Mul
  | Udiv
  | Sdiv
  | Urem
  | Srem
  | And
  | Or
  | Xor
  | Shl
  | Lshr
  | Ashr
  | Eq
  | Ne
  | Ult
  | Ule
  | Slt
  | Sle

type unop =
  | Neg
  | Not (* bitwise complement *)
  | Sext8 (* sign-extend the low 8 bits to 64 *)
  | Sext16
  | Sext32
  | Trunc8 (* zero all but the low 8 bits *)
  | Trunc16
  | Trunc32

type operand =
  | Const of int64
  | Reg of int

(* Memory access width in bytes; values are little-endian, zero-extended. *)
type width =
  | W1
  | W2
  | W4
  | W8

type inst =
  | Bin of int * binop * operand * operand
  | Un of int * unop * operand
  | Load of int * operand * width
  | Store of operand * operand * width (* address, value *)
  | Alloc of int * operand (* destination register, size in bytes *)
  | Free of operand
  | Call of int option * string * operand list
  | Select of int * operand * operand * operand (* dst, cond, if-true, if-false *)

type terminator =
  | Jmp of int
  | Br of operand * int * int (* condition (nonzero = taken), then-block, else-block *)
  | Switch of operand * (int64 * int) list * int (* scrutinee, cases, default *)
  | Ret of operand option
  | Halt of string (* abnormal program termination, e.g. an explicit abort *)

type block = {
  label : string;
  insts : inst array;
  term : terminator;
}

type func = {
  fname : string;
  nparams : int; (* parameters occupy registers 0 .. nparams-1 *)
  nregs : int;
  blocks : block array;
}

type program = {
  funcs : func array;
  main : int; (* index of the entry function *)
}

let bytes_of_width = function
  | W1 -> 1
  | W2 -> 2
  | W4 -> 4
  | W8 -> 8

(* Function lookup is on every call instruction's hot path; build the
   name index once per program. *)
let func_index program =
  let table = Hashtbl.create (Array.length program.funcs * 2) in
  Array.iteri (fun i f -> Hashtbl.replace table f.fname i) program.funcs;
  table

let find_func program name =
  let rec search i =
    if i >= Array.length program.funcs then None
    else if (program.funcs.(i)).fname = name then Some i
    else search (i + 1)
  in
  search 0

(* Names the executors resolve internally instead of via [funcs]. *)
let intrinsics = [ "in_byte"; "in_size"; "out" ]

let is_intrinsic name = List.mem name intrinsics

let block_count program =
  Array.fold_left (fun acc f -> acc + Array.length f.blocks) 0 program.funcs

let inst_count program =
  Array.fold_left
    (fun acc f ->
      Array.fold_left (fun acc b -> acc + Array.length b.insts + 1) acc f.blocks)
    0 program.funcs
