open Types

type error = {
  func : string;
  block : int;
  message : string;
}

let error_to_string e = Printf.sprintf "%s/.%d: %s" e.func e.block e.message

let check_func ~known f =
  let errors = ref [] in
  let err block fmt =
    Printf.ksprintf (fun message -> errors := { func = f.fname; block; message } :: !errors) fmt
  in
  if f.nparams < 0 || f.nparams > f.nregs then
    err (-1) "nparams (%d) out of range for %d registers" f.nparams f.nregs;
  if Array.length f.blocks = 0 then err (-1) "function has no blocks";
  let nblocks = Array.length f.blocks in
  let check_target b target =
    if target < 0 || target >= nblocks then err b "branch target .%d out of range" target
  in
  let check_reg b r = if r < 0 || r >= f.nregs then err b "register r%d out of range" r in
  let check_operand b = function
    | Const _ -> ()
    | Reg r -> check_reg b r
  in
  let check_inst b inst =
    match inst with
    | Bin (dst, _, a, b') ->
      check_reg b dst;
      check_operand b a;
      check_operand b b'
    | Un (dst, _, a) ->
      check_reg b dst;
      check_operand b a
    | Load (dst, addr, _) ->
      check_reg b dst;
      check_operand b addr
    | Store (addr, v, _) ->
      check_operand b addr;
      check_operand b v
    | Alloc (dst, size) ->
      check_reg b dst;
      check_operand b size
    | Free p -> check_operand b p
    | Call (dst, name, args) ->
      (match dst with Some d -> check_reg b d | None -> ());
      List.iter (check_operand b) args;
      if not (known name) then err b "unknown callee %s" name
    | Select (dst, c, x, y) ->
      check_reg b dst;
      check_operand b c;
      check_operand b x;
      check_operand b y
  in
  let check_term b term =
    match term with
    | Jmp t -> check_target b t
    | Br (c, t, e) ->
      check_operand b c;
      check_target b t;
      check_target b e
    | Switch (scrut, cases, default) ->
      check_operand b scrut;
      List.iter (fun (_, t) -> check_target b t) cases;
      check_target b default
    | Ret None -> ()
    | Ret (Some v) -> check_operand b v
    | Halt _ -> ()
  in
  Array.iteri
    (fun b block ->
      Array.iter (check_inst b) block.insts;
      check_term b block.term)
    f.blocks;
  List.rev !errors

let check_program program =
  let errors = ref [] in
  let err message = errors := { func = "<program>"; block = -1; message } :: !errors in
  if program.main < 0 || program.main >= Array.length program.funcs then
    err (Printf.sprintf "main index %d out of range" program.main);
  let names = Hashtbl.create 16 in
  Array.iter
    (fun f ->
      if Hashtbl.mem names f.fname then
        err (Printf.sprintf "duplicate function name %s" f.fname)
      else Hashtbl.replace names f.fname ())
    program.funcs;
  let known name = Hashtbl.mem names name || is_intrinsic name in
  let func_errors =
    Array.to_list program.funcs |> List.concat_map (check_func ~known)
  in
  List.rev !errors @ func_errors

let check_exn program =
  match check_program program with
  | [] -> ()
  | errors ->
    invalid_arg
      ("Ir.Validate: " ^ String.concat "; " (List.map error_to_string errors))
