(** Programmatic IR construction with symbolic block labels.

    Used by the MiniC lowering pass and by tests that need hand-crafted
    control flow. Blocks are referred to by string label while building;
    [finish_func] resolves labels to indices and fails on dangling
    references or unterminated blocks. *)

type fb

val create_func : name:string -> nparams:int -> fb
(** Starts a function whose parameters occupy registers [0..nparams-1];
    an initial block labelled ["entry"] is open. *)

val fresh_reg : fb -> int
(** Allocates a new register slot. *)

val start_block : fb -> string -> unit
(** Closes nothing; begins a new block with the given (unique) label. The
    previous block must already be terminated. *)

val emit : fb -> Types.inst -> unit
(** Appends an instruction to the current block. *)

val jmp : fb -> string -> unit
val br : fb -> Types.operand -> string -> string -> unit
val switch : fb -> Types.operand -> (int64 * string) list -> string -> unit
val ret : fb -> Types.operand option -> unit
val halt : fb -> string -> unit

val current_label : fb -> string
val is_terminated : fb -> bool
(** Whether the current block already has a terminator. *)

val finish_func : fb -> Types.func
(** Resolves labels. Raises [Invalid_argument] on a dangling label, a
    duplicate label or an unterminated block. *)

val program : main:string -> Types.func list -> Types.program
(** Assembles and validates a program. Raises [Invalid_argument] when
    [main] is missing or validation fails. *)
