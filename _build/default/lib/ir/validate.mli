(** Structural validation of IR programs.

    Every program produced by the MiniC frontend or the builder is checked
    before execution: the engines assume these invariants and index arrays
    without bounds checks on the hot path. *)

type error = {
  func : string;
  block : int;
  message : string;
}

val error_to_string : error -> string

val check_func : known:(string -> bool) -> Types.func -> error list
(** [check_func ~known f] validates register ranges, block targets and
    call targets ([known] answers whether a callee name resolves, including
    intrinsics). *)

val check_program : Types.program -> error list
(** Validates every function plus program-level invariants (a valid [main]
    index, unique function names). *)

val check_exn : Types.program -> unit
(** Raises [Invalid_argument] with all rendered errors when validation
    fails. *)
