open Types

(* Terminator with unresolved string targets. *)
type pre_term =
  | Pjmp of string
  | Pbr of operand * string * string
  | Pswitch of operand * (int64 * string) list * string
  | Pret of operand option
  | Phalt of string

type pre_block = {
  plabel : string;
  mutable pinsts : inst list; (* reversed *)
  mutable pterm : pre_term option;
}

type fb = {
  name : string;
  nparams : int;
  mutable next_reg : int;
  mutable blocks : pre_block list; (* reversed *)
  mutable current : pre_block;
}

let create_func ~name ~nparams =
  let entry = { plabel = "entry"; pinsts = []; pterm = None } in
  { name; nparams; next_reg = nparams; blocks = [ entry ]; current = entry }

let fresh_reg fb =
  let r = fb.next_reg in
  fb.next_reg <- r + 1;
  r

let is_terminated fb = fb.current.pterm <> None

let current_label fb = fb.current.plabel

let start_block fb label =
  if not (is_terminated fb) then
    invalid_arg
      (Printf.sprintf "Builder.start_block %s/%s: previous block %s not terminated"
         fb.name label fb.current.plabel);
  let block = { plabel = label; pinsts = []; pterm = None } in
  fb.blocks <- block :: fb.blocks;
  fb.current <- block

let emit fb inst =
  if is_terminated fb then
    invalid_arg
      (Printf.sprintf "Builder.emit in %s: block %s already terminated" fb.name
         fb.current.plabel);
  fb.current.pinsts <- inst :: fb.current.pinsts

let set_term fb term =
  if is_terminated fb then
    invalid_arg
      (Printf.sprintf "Builder: block %s in %s already terminated" fb.current.plabel
         fb.name);
  fb.current.pterm <- Some term

let jmp fb label = set_term fb (Pjmp label)
let br fb cond t e = set_term fb (Pbr (cond, t, e))
let switch fb scrut cases default = set_term fb (Pswitch (scrut, cases, default))
let ret fb v = set_term fb (Pret v)
let halt fb msg = set_term fb (Phalt msg)

let finish_func fb =
  let blocks = Array.of_list (List.rev fb.blocks) in
  let index = Hashtbl.create 16 in
  Array.iteri
    (fun i b ->
      if Hashtbl.mem index b.plabel then
        invalid_arg (Printf.sprintf "Builder: duplicate label %s in %s" b.plabel fb.name);
      Hashtbl.replace index b.plabel i)
    blocks;
  let resolve label =
    match Hashtbl.find_opt index label with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Builder: dangling label %s in %s" label fb.name)
  in
  let invalid_unterminated b =
    invalid_arg (Printf.sprintf "Builder: block %s in %s has no terminator" b fb.name)
  in
  let resolve_term plabel = function
    | Some (Pjmp l) -> Jmp (resolve l)
    | Some (Pbr (c, t, e)) -> Br (c, resolve t, resolve e)
    | Some (Pswitch (s, cases, d)) ->
      Switch (s, List.map (fun (v, l) -> (v, resolve l)) cases, resolve d)
    | Some (Pret v) -> Ret v
    | Some (Phalt m) -> Halt m
    | None -> invalid_unterminated plabel
  in
  let final =
    Array.map
      (fun b ->
        {
          label = b.plabel;
          insts = Array.of_list (List.rev b.pinsts);
          term = resolve_term b.plabel b.pterm;
        })
      blocks
  in
  { fname = fb.name; nparams = fb.nparams; nregs = fb.next_reg; blocks = final }

let program ~main funcs =
  let funcs = Array.of_list funcs in
  let main_index =
    let rec search i =
      if i >= Array.length funcs then
        invalid_arg (Printf.sprintf "Builder.program: no function named %s" main)
      else if (funcs.(i)).fname = main then i
      else search (i + 1)
    in
    search 0
  in
  let prog = { funcs; main = main_index } in
  Validate.check_exn prog;
  prog
