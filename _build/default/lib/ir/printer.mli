(** Human-readable rendering of IR values and programs, used by tests,
    debugging output and golden files. *)

val binop_to_string : Types.binop -> string
val unop_to_string : Types.unop -> string
val operand_to_string : Types.operand -> string
val width_to_string : Types.width -> string
val inst_to_string : Types.inst -> string
val terminator_to_string : Types.terminator -> string

val func_to_string : Types.func -> string
(** Whole function: signature line, then one indented line per
    instruction, blocks introduced by [label:]. *)

val program_to_string : Types.program -> string
