open Types

let binop_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Udiv -> "udiv"
  | Sdiv -> "sdiv"
  | Urem -> "urem"
  | Srem -> "srem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Lshr -> "lshr"
  | Ashr -> "ashr"
  | Eq -> "eq"
  | Ne -> "ne"
  | Ult -> "ult"
  | Ule -> "ule"
  | Slt -> "slt"
  | Sle -> "sle"

let unop_to_string = function
  | Neg -> "neg"
  | Not -> "not"
  | Sext8 -> "sext8"
  | Sext16 -> "sext16"
  | Sext32 -> "sext32"
  | Trunc8 -> "trunc8"
  | Trunc16 -> "trunc16"
  | Trunc32 -> "trunc32"

let operand_to_string = function
  | Const c -> Int64.to_string c
  | Reg r -> Printf.sprintf "r%d" r

let width_to_string = function
  | W1 -> "w1"
  | W2 -> "w2"
  | W4 -> "w4"
  | W8 -> "w8"

let inst_to_string inst =
  let op = operand_to_string in
  match inst with
  | Bin (dst, bop, a, b) ->
    Printf.sprintf "r%d = %s %s, %s" dst (binop_to_string bop) (op a) (op b)
  | Un (dst, uop, a) -> Printf.sprintf "r%d = %s %s" dst (unop_to_string uop) (op a)
  | Load (dst, addr, w) ->
    Printf.sprintf "r%d = load.%s [%s]" dst (width_to_string w) (op addr)
  | Store (addr, v, w) ->
    Printf.sprintf "store.%s [%s], %s" (width_to_string w) (op addr) (op v)
  | Alloc (dst, size) -> Printf.sprintf "r%d = alloc %s" dst (op size)
  | Free p -> Printf.sprintf "free %s" (op p)
  | Call (dst, name, args) ->
    let args = String.concat ", " (List.map op args) in
    (match dst with
     | Some d -> Printf.sprintf "r%d = call %s(%s)" d name args
     | None -> Printf.sprintf "call %s(%s)" name args)
  | Select (dst, c, a, b) ->
    Printf.sprintf "r%d = select %s, %s, %s" dst (op c) (op a) (op b)

let terminator_to_string term =
  let op = operand_to_string in
  match term with
  | Jmp b -> Printf.sprintf "jmp .%d" b
  | Br (c, t, e) -> Printf.sprintf "br %s, .%d, .%d" (op c) t e
  | Switch (scrut, cases, default) ->
    let case (v, b) = Printf.sprintf "%Ld -> .%d" v b in
    Printf.sprintf "switch %s [%s] default .%d" (op scrut)
      (String.concat "; " (List.map case cases))
      default
  | Ret None -> "ret"
  | Ret (Some v) -> Printf.sprintf "ret %s" (op v)
  | Halt msg -> Printf.sprintf "halt %S" msg

let func_to_string f =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "fn %s(params=%d, regs=%d) {\n" f.fname f.nparams f.nregs);
  Array.iteri
    (fun i block ->
      Buffer.add_string buf (Printf.sprintf ".%d (%s):\n" i block.label);
      Array.iter
        (fun inst -> Buffer.add_string buf ("  " ^ inst_to_string inst ^ "\n"))
        block.insts;
      Buffer.add_string buf ("  " ^ terminator_to_string block.term ^ "\n"))
    f.blocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let program_to_string program =
  String.concat "\n" (Array.to_list (Array.map func_to_string program.funcs))
