open Types

type t = {
  prog : program;
  offsets : int array; (* function index -> first global block id *)
  total : int;
  succs : int list array;
  preds : int list array;
}

let program t = t.prog

let nblocks t = t.total

let id t fidx bidx = t.offsets.(fidx) + bidx

let of_id t gid =
  let rec locate fidx =
    if fidx + 1 < Array.length t.offsets && t.offsets.(fidx + 1) <= gid then
      locate (fidx + 1)
    else fidx
  in
  let fidx = locate 0 in
  (fidx, gid - t.offsets.(fidx))

let label t gid =
  let fidx, bidx = of_id t gid in
  Printf.sprintf "%s/.%d" (t.prog.funcs.(fidx)).fname bidx

let term_successors term =
  match term with
  | Jmp b -> [ b ]
  | Br (_, th, el) -> [ th; el ]
  | Switch (_, cases, default) -> default :: List.map snd cases
  | Ret _ | Halt _ -> []

let build prog =
  let nfuncs = Array.length prog.funcs in
  let offsets = Array.make nfuncs 0 in
  let total = ref 0 in
  Array.iteri
    (fun i f ->
      offsets.(i) <- !total;
      total := !total + Array.length f.blocks)
    prog.funcs;
  let total = !total in
  let succs = Array.make total [] in
  let preds = Array.make total [] in
  let index = func_index prog in
  let add_edge src dst =
    succs.(src) <- dst :: succs.(src);
    preds.(dst) <- src :: preds.(dst)
  in
  Array.iteri
    (fun fidx f ->
      Array.iteri
        (fun bidx block ->
          let src = offsets.(fidx) + bidx in
          List.iter (fun b -> add_edge src (offsets.(fidx) + b)) (term_successors block.term);
          Array.iter
            (fun inst ->
              match inst with
              | Call (_, name, _) when not (is_intrinsic name) ->
                (match Hashtbl.find_opt index name with
                 | Some callee -> add_edge src offsets.(callee)
                 | None -> ())
              | Call _ | Bin _ | Un _ | Load _ | Store _ | Alloc _ | Free _ | Select _ -> ())
            block.insts)
        f.blocks)
    prog.funcs;
  { prog; offsets; total; succs; preds }

let successors t gid = t.succs.(gid)

let bfs edges total sources =
  let dist = Array.make total max_int in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if dist.(s) = max_int then begin
        dist.(s) <- 0;
        Queue.add s queue
      end)
    sources;
  while not (Queue.is_empty queue) do
    let node = Queue.pop queue in
    let d = dist.(node) in
    List.iter
      (fun next ->
        if dist.(next) = max_int then begin
          dist.(next) <- d + 1;
          Queue.add next queue
        end)
      (edges node)
  done;
  dist

let reachable_from t gid =
  let dist = bfs (fun n -> t.succs.(n)) t.total [ gid ] in
  Array.map (fun d -> d <> max_int) dist

let distances_to t ~targets =
  let sources = ref [] in
  for gid = t.total - 1 downto 0 do
    if targets gid then sources := gid :: !sources
  done;
  bfs (fun n -> t.preds.(n)) t.total !sources
