lib/ir/types.ml: Array Hashtbl List
