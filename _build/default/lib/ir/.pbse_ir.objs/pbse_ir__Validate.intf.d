lib/ir/validate.mli: Types
