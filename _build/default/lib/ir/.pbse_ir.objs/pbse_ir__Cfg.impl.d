lib/ir/cfg.ml: Array Hashtbl List Printf Queue Types
