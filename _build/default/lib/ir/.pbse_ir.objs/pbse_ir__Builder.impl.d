lib/ir/builder.ml: Array Hashtbl List Printf Types Validate
