lib/ir/cfg.mli: Types
