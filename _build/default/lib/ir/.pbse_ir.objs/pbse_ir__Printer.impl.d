lib/ir/printer.ml: Array Buffer Int64 List Printf String Types
