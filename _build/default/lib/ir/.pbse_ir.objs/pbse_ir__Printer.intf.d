lib/ir/printer.mli: Types
