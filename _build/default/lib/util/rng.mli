(** Deterministic pseudo-random number generation (SplitMix64).

    Every stochastic component of the engine (random searchers, k-means++
    initialisation, seed-pool sampling) draws from an explicit [Rng.t] so
    that whole experiments replay bit-for-bit from a single integer seed. *)

type t

val create : int -> t
(** [create seed] makes a generator from a 63-bit seed. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val copy : t -> t
(** [copy t] duplicates the generator state without advancing [t]. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument] when
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. Raises [Invalid_argument] on an
    empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
