type t = { mutable now : int }

let create () = { now = 0 }

let now t = t.now

let tick t = t.now <- t.now + 1

let advance t n =
  if n < 0 then invalid_arg "Vclock.advance: negative increment";
  t.now <- t.now + n

let reset t = t.now <- 0
