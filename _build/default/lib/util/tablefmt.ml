type t = {
  headers : string list;
  mutable rows : string list list; (* reversed *)
}

let create headers = { headers; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let pad_to n row =
  let len = List.length row in
  if len >= n then row else row @ List.init (n - len) (fun _ -> "")

let render t =
  let rows = List.rev t.rows in
  let ncols =
    List.fold_left
      (fun acc row -> max acc (List.length row))
      (List.length t.headers) rows
  in
  let all = pad_to ncols t.headers :: List.map (pad_to ncols) rows in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter measure all;
  let render_row row =
    let cells =
      List.mapi (fun i cell -> Printf.sprintf " %-*s " widths.(i) cell) row
    in
    "|" ^ String.concat "|" cells ^ "|"
  in
  let sep =
    let dashes = Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths) in
    "|" ^ String.concat "+" dashes ^ "|"
  in
  match all with
  | [] -> ""
  | header :: body ->
    String.concat "\n" (render_row header :: sep :: List.map render_row body)

let print t = print_endline (render t)
