(** Virtual clock.

    The paper measures everything in wall-clock hours on a 12-core Xeon.
    We replace wall time with a deterministic counter of engine work units:
    one unit per executed instruction (concrete or symbolic) plus the
    solver's reported search effort. All pbSE mechanisms that reference
    time (BBV gathering intervals, phase turn periods, hour budgets) read
    this clock, which makes every experiment deterministic and
    hardware-independent while preserving all time ratios. *)

type t

val create : unit -> t

val now : t -> int
(** Current virtual time in work units. *)

val tick : t -> unit
(** Advance by one unit. *)

val advance : t -> int -> unit
(** [advance t n] adds [n >= 0] units. *)

val reset : t -> unit
