lib/util/vclock.mli:
