lib/util/vclock.ml:
