lib/util/tablefmt.mli:
