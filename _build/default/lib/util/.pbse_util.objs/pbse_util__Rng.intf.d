lib/util/rng.mli:
