(** Plain-text table rendering for the benchmark harness.

    Renders rows the way the paper's tables do: a header row, aligned
    columns, and '|' separators, so bench output can be compared to the
    paper side by side. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Appends a row; short rows are padded with empty cells. *)

val render : t -> string
(** Renders the whole table, header first. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)
