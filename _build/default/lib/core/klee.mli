(** Baseline KLEE-style runs: one searcher, a zero-filled symbolic file of
    a chosen size, coverage sampled at virtual-time checkpoints. This is
    the comparator for the paper's Tables I and II. *)

type result = {
  searcher : string;
  checkpoints : (int * int) list; (* (virtual time, blocks covered), ascending *)
  bugs : Pbse_exec.Bug.t list;
  forks : int;
  instructions : int;
}

val run :
  ?rng_seed:int ->
  ?max_live:int ->
  ?solver_budget:int ->
  ?confirm_bugs:bool ->
  Pbse_ir.Types.program ->
  searcher:string ->
  input:bytes ->
  checkpoints:int list ->
  result
(** [run prog ~searcher ~input ~checkpoints] explores with the named
    searcher until the largest checkpoint, recording coverage as each
    checkpoint passes. [input] is the symbolic file (KLEE's
    [--sym-files 1 N] corresponds to [Bytes.make n '\000']). Raises
    [Invalid_argument] on an unknown searcher name. *)
