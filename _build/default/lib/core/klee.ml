module Executor = Pbse_exec.Executor
module Searcher = Pbse_exec.Searcher
module Coverage = Pbse_exec.Coverage
module Vclock = Pbse_util.Vclock
module Rng = Pbse_util.Rng

type result = {
  searcher : string;
  checkpoints : (int * int) list;
  bugs : Pbse_exec.Bug.t list;
  forks : int;
  instructions : int;
}

let run ?(rng_seed = 1) ?max_live ?solver_budget ?confirm_bugs prog ~searcher ~input
    ~checkpoints =
  let make =
    match Searcher.by_name searcher with
    | Some make -> make
    | None -> invalid_arg ("Klee.run: unknown searcher " ^ searcher)
  in
  let clock = Vclock.create () in
  let exec = Executor.create ?max_live ?solver_budget ?confirm_bugs ~clock prog ~input in
  let rng = Rng.create rng_seed in
  let s = make rng (Executor.cfg exec) (Executor.coverage exec) in
  s.Searcher.add (Executor.initial_state exec);
  let sorted = List.sort_uniq Int.compare checkpoints in
  let samples =
    List.map
      (fun deadline ->
        Executor.explore exec s ~deadline;
        (deadline, Coverage.count (Executor.coverage exec)))
      sorted
  in
  {
    searcher;
    checkpoints = samples;
    bugs = Executor.bugs exec;
    forks = (Executor.stats exec).Executor.forks;
    instructions = (Executor.stats exec).Executor.instructions;
  }
