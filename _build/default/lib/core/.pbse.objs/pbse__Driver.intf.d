lib/core/driver.mli: Pbse_concolic Pbse_exec Pbse_ir Pbse_phase
