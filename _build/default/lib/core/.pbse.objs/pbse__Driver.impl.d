lib/core/driver.ml: Bytes Hashtbl Int List Option Pbse_concolic Pbse_exec Pbse_phase Pbse_util
