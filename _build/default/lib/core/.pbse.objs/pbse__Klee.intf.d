lib/core/klee.mli: Pbse_exec Pbse_ir
