lib/core/klee.ml: Int List Pbse_exec Pbse_util
