(** Block-entry traces with the paper's Fig. 1 numbering.

    Blocks are labelled in order of first execution during the concrete
    run; a block first seen later (e.g. only by symbolic execution) gets
    the next free label. Plotting label against entry time reproduces the
    paper's basic-block distribution scatter plots. *)

type indexer

val indexer : unit -> indexer

val index_of : indexer -> int -> int
(** [index_of ix gid] returns the stable plot index for a global block
    id, assigning the next fresh index on first sight. *)

val assigned : indexer -> int
(** Number of distinct blocks seen. *)

type point = {
  vtime : int;
  bb : int; (* plot index *)
}

type t

val create : indexer -> t
val record : t -> vtime:int -> gid:int -> unit
val points : t -> point list
(** Chronological. *)

val to_csv : t -> string
(** "vtime,bb" lines, with header. *)
