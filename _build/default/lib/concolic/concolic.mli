(** Concolic execution (the paper's Algorithm 2).

    Runs the program once, following the seed input exactly (the
    symbolic executor's state model is the seed, so the model-preferred
    side of every branch is the concrete path), while:

    - gathering one {!Bbv.t} per virtual-time interval;
    - recording a {!Trace.t} of block entries for the Fig. 1 plots;
    - capturing every feasible not-taken branch side as a seedState — a
      ready-to-run symbolic state whose path prefix encodes "reach this
      fork along the seed path, then diverge" (paper §III-B2: this is how
      later phases are entered without re-exploring earlier ones).

    The virtual time consumed is the paper's "c-time" column. *)

type seed_state = {
  state : Pbse_exec.State.t;
  fork_vtime : int; (* when the fork point was reached *)
  fork_gid : int; (* global block id of the forking branch *)
}

type outcome =
  | Exited of int64
  | Stopped of string (* fault, abort or infeasibility *)
  | Deadline

type result = {
  bbvs : Bbv.t list;
  seed_states : seed_state list; (* chronological *)
  trace : Trace.t;
  outcome : outcome;
  c_time : int;
  blocks_entered : int;
}

val run :
  ?interval_length:int ->
  ?deadline:int ->
  Pbse_exec.Executor.t ->
  Trace.indexer ->
  result
(** [run exec ix] drives [exec]'s initial state to completion. The
    executor must have been created with the seed as its input buffer.
    [interval_length] defaults to 2000 virtual-time units; [deadline]
    bounds runaway seeds (default 5,000,000). The executor's trace hook
    is used during the run and cleared afterwards. *)

val default_interval_length : int
