type t = {
  index : int;
  t_start : int;
  t_end : int;
  counts : (int * int) array;
  total : int;
  coverage : int;
}

let normalized t =
  if t.total = 0 then [||]
  else
    Array.map (fun (gid, c) -> (gid, float_of_int c /. float_of_int t.total)) t.counts

let dims bbvs =
  List.fold_left
    (fun acc bbv ->
      Array.fold_left (fun acc (gid, _) -> max acc (gid + 1)) acc bbv.counts)
    0 bbvs

type builder = {
  interval_length : int;
  counts : (int, int) Hashtbl.t;
  mutable current : int; (* current interval index *)
  mutable started_at : int;
  mutable acc : t list; (* reversed *)
  mutable probe : unit -> int;
}

let builder ~interval_length =
  if interval_length <= 0 then invalid_arg "Bbv.builder: interval_length must be positive";
  {
    interval_length;
    counts = Hashtbl.create 256;
    current = 0;
    started_at = 0;
    acc = [];
    probe = (fun () -> 0);
  }

let set_coverage_probe b probe = b.probe <- probe

let interval_of_vtime b vtime = vtime / b.interval_length

let close b ~t_end =
  if Hashtbl.length b.counts > 0 then begin
    let counts =
      Hashtbl.fold (fun gid c acc -> (gid, c) :: acc) b.counts []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      |> Array.of_list
    in
    let total = Array.fold_left (fun acc (_, c) -> acc + c) 0 counts in
    b.acc <-
      {
        index = b.current;
        t_start = b.started_at;
        t_end;
        counts;
        total;
        coverage = b.probe ();
      }
      :: b.acc;
    Hashtbl.reset b.counts
  end

let record b ~vtime ~gid =
  let interval = interval_of_vtime b vtime in
  if interval <> b.current then begin
    close b ~t_end:(b.current * b.interval_length + b.interval_length);
    b.current <- interval;
    b.started_at <- interval * b.interval_length
  end;
  Hashtbl.replace b.counts gid
    (1 + match Hashtbl.find_opt b.counts gid with Some c -> c | None -> 0)

let flush b ~coverage_at ~vtime =
  b.probe <- coverage_at;
  close b ~t_end:vtime

let bbvs b = List.rev b.acc
