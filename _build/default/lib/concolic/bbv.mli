(** Basic block vectors (BBVs).

    A BBV counts, for one virtual-time interval of a concrete execution,
    how many times each basic block was entered (Sherwood-style basic
    block distribution analysis, as used by the paper for phase
    detection). The coverage field records global block coverage at
    gathering time — the extra vector element pbSE adds so that phase
    clustering can tell "same loop, no progress" apart from "new code"
    (paper §III-B1, Fig. 4). *)

type t = {
  index : int; (* interval number, 0-based *)
  t_start : int; (* virtual time at interval start *)
  t_end : int;
  counts : (int * int) array; (* (global block id, entries), sorted by id *)
  total : int; (* sum of counts *)
  coverage : int; (* blocks covered when the interval closed *)
}

val normalized : t -> (int * float) array
(** Counts as proportions of the interval total (the paper normalises
    BBVs because only the mix of blocks matters, not the raw rate). *)

val dims : t list -> int
(** 1 + the largest block id mentioned (the number of dimensions needed
    to embed these BBVs, before the coverage element). *)

type builder

val builder : interval_length:int -> builder

val record : builder -> vtime:int -> gid:int -> unit
(** Called on every block entry; closes intervals automatically as
    [vtime] crosses interval boundaries. *)

val flush : builder -> coverage_at:(unit -> int) -> vtime:int -> unit
(** Force-close the current interval (used at end of execution). *)

val set_coverage_probe : builder -> (unit -> int) -> unit
(** Where to read coverage when an interval closes. *)

val bbvs : builder -> t list
(** Intervals gathered so far, oldest first. *)

val interval_of_vtime : builder -> int -> int
(** Which interval index a virtual time falls into. *)
