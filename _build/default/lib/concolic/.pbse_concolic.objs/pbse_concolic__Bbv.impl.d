lib/concolic/bbv.ml: Array Hashtbl Int List
