lib/concolic/concolic.ml: Bbv List Pbse_exec Pbse_util Trace
