lib/concolic/concolic.mli: Bbv Pbse_exec Trace
