lib/concolic/trace.ml: Buffer Hashtbl List Printf
