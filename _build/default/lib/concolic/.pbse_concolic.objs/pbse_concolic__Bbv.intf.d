lib/concolic/bbv.mli:
