lib/concolic/trace.mli:
