module Executor = Pbse_exec.Executor
module Coverage = Pbse_exec.Coverage
module State = Pbse_exec.State
module Vclock = Pbse_util.Vclock

type seed_state = {
  state : Pbse_exec.State.t;
  fork_vtime : int;
  fork_gid : int;
}

type outcome =
  | Exited of int64
  | Stopped of string
  | Deadline

type result = {
  bbvs : Bbv.t list;
  seed_states : seed_state list;
  trace : Trace.t;
  outcome : outcome;
  c_time : int;
  blocks_entered : int;
}

let default_interval_length = 2000

let run ?(interval_length = default_interval_length) ?(deadline = 5_000_000) exec ix =
  let clock = Executor.clock exec in
  let t0 = Vclock.now clock in
  let builder = Bbv.builder ~interval_length in
  Bbv.set_coverage_probe builder (fun () -> Coverage.count (Executor.coverage exec));
  let trace = Trace.create ix in
  let entered = ref 0 in
  Executor.set_trace exec
    (Some
       (fun gid ->
         incr entered;
         let vtime = Vclock.now clock in
         Bbv.record builder ~vtime ~gid;
         Trace.record trace ~vtime ~gid));
  Executor.set_lazy_fork exec true;
  let st = Executor.initial_state exec in
  let seeds = ref [] in
  let rec loop () =
    if Vclock.now clock - t0 >= deadline then Deadline
    else
      match Executor.run_slice exec st with
      | Executor.Running -> loop ()
      | Executor.Forked children ->
        List.iter
          (fun (child : Pbse_exec.State.t) ->
            seeds :=
              { state = child; fork_vtime = child.State.born; fork_gid = child.State.fork_gid }
              :: !seeds)
          children;
        loop ()
      | Executor.Finished reason -> (
        match reason with
        | Executor.Exited code -> Exited code
        | Executor.Buggy bug -> Stopped ("bug: " ^ bug.Pbse_exec.Bug.kind)
        | Executor.Infeasible -> Stopped "infeasible"
        | Executor.Aborted msg -> Stopped msg)
  in
  let outcome = loop () in
  Executor.set_lazy_fork exec false;
  Executor.set_trace exec None;
  Bbv.flush builder
    ~coverage_at:(fun () -> Coverage.count (Executor.coverage exec))
    ~vtime:(Vclock.now clock);
  {
    bbvs = Bbv.bbvs builder;
    seed_states = List.rev !seeds;
    trace;
    outcome;
    c_time = Vclock.now clock - t0;
    blocks_entered = !entered;
  }
