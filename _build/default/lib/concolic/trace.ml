type indexer = {
  mutable next : int;
  map : (int, int) Hashtbl.t;
}

let indexer () = { next = 0; map = Hashtbl.create 512 }

let index_of ix gid =
  match Hashtbl.find_opt ix.map gid with
  | Some i -> i
  | None ->
    let i = ix.next in
    ix.next <- i + 1;
    Hashtbl.replace ix.map gid i;
    i

let assigned ix = ix.next

type point = {
  vtime : int;
  bb : int;
}

type t = {
  ix : indexer;
  mutable points : point list; (* reversed *)
}

let create ix = { ix; points = [] }

let record t ~vtime ~gid = t.points <- { vtime; bb = index_of t.ix gid } :: t.points

let points t = List.rev t.points

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "vtime,bb\n";
  List.iter
    (fun p -> Buffer.add_string buf (Printf.sprintf "%d,%d\n" p.vtime p.bb))
    (points t);
  Buffer.contents buf
