module Imap = Map.Make (Int)

type t = int Imap.t

let empty = Imap.empty

let of_bytes b =
  let rec fill i acc =
    if i < 0 then acc else fill (i - 1) (Imap.add i (Char.code (Bytes.get b i)) acc)
  in
  fill (Bytes.length b - 1) empty

let of_string s = of_bytes (Bytes.of_string s)

let get t i = match Imap.find_opt i t with Some v -> v | None -> 0

let set t i v = Imap.add i (v land 0xFF) t

let bindings t = Imap.bindings t

let eval t e = Expr.eval (get t) e

let satisfies t cs = List.for_all (fun c -> Semantics.truthy (eval t c)) cs

let to_bytes ~size t =
  let b = Bytes.make size '\000' in
  Imap.iter (fun i v -> if i < size then Bytes.set b i (Char.chr (v land 0xFF))) t;
  b

let union a b = Imap.union (fun _ va _ -> Some va) a b
