open Pbse_ir.Types

let bool_val b = if b then 1L else 0L

let shift_amount b = if Int64.unsigned_compare b 64L >= 0 then None else Some (Int64.to_int b)

let binop op a b =
  match op with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Mul -> Int64.mul a b
  | Udiv -> if b = 0L then 0L else Int64.unsigned_div a b
  | Sdiv ->
    if b = 0L then 0L
    else if a = Int64.min_int && b = -1L then Int64.min_int
    else Int64.div a b
  | Urem -> if b = 0L then a else Int64.unsigned_rem a b
  | Srem ->
    if b = 0L then a else if a = Int64.min_int && b = -1L then 0L else Int64.rem a b
  | And -> Int64.logand a b
  | Or -> Int64.logor a b
  | Xor -> Int64.logxor a b
  | Shl -> (match shift_amount b with None -> 0L | Some n -> Int64.shift_left a n)
  | Lshr -> (match shift_amount b with None -> 0L | Some n -> Int64.shift_right_logical a n)
  | Ashr ->
    (match shift_amount b with
     | None -> if a < 0L then -1L else 0L
     | Some n -> Int64.shift_right a n)
  | Eq -> bool_val (a = b)
  | Ne -> bool_val (a <> b)
  | Ult -> bool_val (Int64.unsigned_compare a b < 0)
  | Ule -> bool_val (Int64.unsigned_compare a b <= 0)
  | Slt -> bool_val (a < b)
  | Sle -> bool_val (a <= b)

let unop op a =
  match op with
  | Neg -> Int64.neg a
  | Not -> Int64.lognot a
  | Sext8 -> Int64.shift_right (Int64.shift_left a 56) 56
  | Sext16 -> Int64.shift_right (Int64.shift_left a 48) 48
  | Sext32 -> Int64.shift_right (Int64.shift_left a 32) 32
  | Trunc8 -> Int64.logand a 0xFFL
  | Trunc16 -> Int64.logand a 0xFFFFL
  | Trunc32 -> Int64.logand a 0xFFFFFFFFL

let truthy v = v <> 0L
