(** Scalar semantics of IR operators over 64-bit values.

    This is the single definition shared by the concrete interpreter, the
    symbolic expression constant-folder and the solver's evaluator, so the
    three can never disagree. All operations are total:

    - division by zero yields 0, remainder by zero yields the dividend
      (the executors raise a division bug before ever evaluating these);
    - shifts by 64 or more yield 0 (arithmetic right shift yields the
      smeared sign bit);
    - [Int64.min_int / -1] yields [Int64.min_int] (two's-complement wrap);
    - comparisons yield 1 or 0. *)

val binop : Pbse_ir.Types.binop -> int64 -> int64 -> int64
val unop : Pbse_ir.Types.unop -> int64 -> int64

val truthy : int64 -> bool
(** Branch-condition interpretation: any nonzero value is true. *)
