open Pbse_ir.Types

type t = {
  lo : int64;
  hi : int64;
}

let ucmp = Int64.unsigned_compare
let umin a b = if ucmp a b <= 0 then a else b
let umax a b = if ucmp a b >= 0 then a else b

let make lo hi =
  if ucmp lo hi > 0 then invalid_arg "Interval.make: lo >u hi";
  { lo; hi }

let point v = { lo = v; hi = v }
let top = { lo = 0L; hi = -1L }
let bool_any = { lo = 0L; hi = 1L }
let byte_any = { lo = 0L; hi = 255L }

let is_point t = if t.lo = t.hi then Some t.lo else None
let contains t v = ucmp t.lo v <= 0 && ucmp v t.hi <= 0
let hull a b = { lo = umin a.lo b.lo; hi = umax a.hi b.hi }

let definitely_true t = t.lo <> 0L
let definitely_false t = t.lo = 0L && t.hi = 0L

let bool_of b = if b then point 1L else point 0L

(* Whether every value of the interval lies in the non-negative signed
   half-range, i.e. signed and unsigned orders coincide on it. *)
let nonneg t = t.hi >= 0L

(* Unsigned addition overflow test. *)
let add_overflows a b = ucmp (Int64.add a b) a < 0

let mul_overflows a b =
  a <> 0L && b <> 0L && ucmp (Int64.unsigned_div (-1L) a) b < 0

(* Smallest all-ones mask covering v (unsigned). *)
let mask_above v =
  let rec widen m = if ucmp m v >= 0 then m else widen (Int64.logor (Int64.shift_left m 1) 1L) in
  if v = 0L then 0L else if v < 0L then -1L else widen 1L

let shift_left_total a n =
  if n >= 64 || n < 0 then 0L else Int64.shift_left a n

let shift_right_total a n =
  if n >= 64 || n < 0 then 0L else Int64.shift_right_logical a n

(* Every value in the interval is strictly negative when read as signed —
   the common shape of "x - k" encoded as x + (-k). The [neg hi > 0]
   conjunct excludes [min_int], whose negation is itself, guaranteeing the
   negated interval is strictly positive (no rewriting loop). *)
let all_negative iv = iv.lo < 0L && Int64.neg iv.hi > 0L

let negate iv = { lo = Int64.neg iv.hi; hi = Int64.neg iv.lo }

let rec binop op a b =
  match op with
  | Add ->
    (* x + (-k) is x - k; rewriting keeps loop-counter bounds precise *)
    if all_negative b then binop Sub a (negate b)
    else if all_negative a then binop Sub b (negate a)
    else if add_overflows a.hi b.hi then top
    else { lo = Int64.add a.lo b.lo; hi = Int64.add a.hi b.hi }
  | Sub ->
    if all_negative b then binop Add a (negate b)
    else if ucmp a.lo b.hi >= 0 then
      { lo = Int64.sub a.lo b.hi; hi = Int64.sub a.hi b.lo }
    else top
  | Mul ->
    if mul_overflows a.hi b.hi then top
    else { lo = Int64.mul a.lo b.lo; hi = Int64.mul a.hi b.hi }
  | Udiv ->
    (* division by zero yields 0 in our total semantics *)
    if b.lo = 0L then { lo = 0L; hi = a.hi }
    else { lo = Int64.unsigned_div a.lo b.hi; hi = Int64.unsigned_div a.hi b.lo }
  | Urem ->
    if b.lo = 0L then { lo = 0L; hi = a.hi }
    else { lo = 0L; hi = umin a.hi (Int64.sub b.hi 1L) }
  | Sdiv -> if nonneg a && nonneg b then binop_sdiv_nonneg a b else top
  | Srem ->
    if nonneg a && nonneg b then
      if b.lo = 0L then { lo = 0L; hi = a.hi }
      else { lo = 0L; hi = umin a.hi (Int64.sub b.hi 1L) }
    else top
  | And -> { lo = 0L; hi = umin a.hi b.hi }
  | Or -> { lo = umax a.lo b.lo; hi = mask_above (Int64.logor a.hi b.hi) }
  | Xor -> { lo = 0L; hi = mask_above (Int64.logor a.hi b.hi) }
  | Shl -> (
    match is_point b with
    | Some n when ucmp n 64L < 0 ->
      let n = Int64.to_int n in
      if a.hi <> 0L && ucmp a.hi (shift_right_total (-1L) n) > 0 then top
      else { lo = shift_left_total a.lo n; hi = shift_left_total a.hi n }
    | Some _ -> point 0L
    | None -> top)
  | Lshr ->
    (* monotone: larger shifts give smaller results *)
    let lo = if ucmp b.hi 64L >= 0 then 0L else shift_right_total a.lo (Int64.to_int b.hi) in
    { lo; hi = shift_right_total a.hi (Int64.to_int (umin b.lo 63L)) }
  | Ashr -> if nonneg a then binop Lshr a b else top
  | Eq -> (
    match (is_point a, is_point b) with
    | Some x, Some y -> bool_of (x = y)
    | _ -> if ucmp a.hi b.lo < 0 || ucmp b.hi a.lo < 0 then point 0L else bool_any)
  | Ne -> (
    match (is_point a, is_point b) with
    | Some x, Some y -> bool_of (x <> y)
    | _ -> if ucmp a.hi b.lo < 0 || ucmp b.hi a.lo < 0 then point 1L else bool_any)
  | Ult ->
    if ucmp a.hi b.lo < 0 then point 1L
    else if ucmp b.hi a.lo <= 0 then point 0L
    else bool_any
  | Ule ->
    if ucmp a.hi b.lo <= 0 then point 1L
    else if ucmp b.hi a.lo < 0 then point 0L
    else bool_any
  | Slt -> if nonneg a && nonneg b then binop Ult a b else bool_any
  | Sle -> if nonneg a && nonneg b then binop Ule a b else bool_any

and binop_sdiv_nonneg a b =
  if b.lo = 0L then { lo = 0L; hi = a.hi }
  else { lo = Int64.div a.lo b.hi; hi = Int64.div a.hi b.lo }

let unop op a =
  match op with
  | Neg -> if a.lo = 0L && a.hi = 0L then point 0L else top
  | Not ->
    (* complement reverses unsigned order *)
    { lo = Int64.lognot a.hi; hi = Int64.lognot a.lo }
  | Sext8 -> if ucmp a.hi 0x7FL <= 0 then a else top
  | Sext16 -> if ucmp a.hi 0x7FFFL <= 0 then a else top
  | Sext32 -> if ucmp a.hi 0x7FFFFFFFL <= 0 then a else top
  | Trunc8 -> if ucmp a.hi 0xFFL <= 0 then a else { lo = 0L; hi = 0xFFL }
  | Trunc16 -> if ucmp a.hi 0xFFFFL <= 0 then a else { lo = 0L; hi = 0xFFFFL }
  | Trunc32 -> if ucmp a.hi 0xFFFFFFFFL <= 0 then a else { lo = 0L; hi = 0xFFFFFFFFL }

let eval lookup e =
  let memo = Hashtbl.create 64 in
  let rec go (e : Expr.t) =
    match e.node with
    | Expr.Const c -> point c
    | Expr.Read i ->
      let iv = lookup i in
      if ucmp iv.hi 255L > 0 then byte_any else iv
    | Expr.Bin _ | Expr.Un _ | Expr.Ite _ -> (
      match Hashtbl.find_opt memo e.id with
      | Some v -> v
      | None ->
        let v =
          match e.node with
          | Expr.Bin (Pbse_ir.Types.Or, x, y)
            when Int64.logand x.Expr.bits y.Expr.bits = 0L ->
            (* disjoint possible bits: or is addition, which the interval
               arithmetic tracks exactly — crucial for multi-byte field
               reads composed as (b0 | b1 << 8 | ...) *)
            binop Pbse_ir.Types.Add (go x) (go y)
          | Expr.Bin (op, x, y) -> binop op (go x) (go y)
          | Expr.Un (op, x) -> unop op (go x)
          | Expr.Ite (c, t, f) ->
            let ci = go c in
            if definitely_true ci then go t
            else if definitely_false ci then go f
            else hull (go t) (go f)
          | Expr.Const _ | Expr.Read _ -> assert false
        in
        Hashtbl.add memo e.id v;
        v)
  in
  go e

let to_string t = Printf.sprintf "[%Lu, %Lu]" t.lo t.hi
