(** Sound unsigned interval analysis over symbolic expressions.

    An interval [{lo; hi}] denotes all 64-bit values [v] with
    [lo <=u v <=u hi]. The analysis is the solver's pruning engine: if a
    path constraint's interval is exactly [0, 0] under the current
    domains, the constraint is definitely violated. Signed operators are
    handled precisely when operands provably stay in the non-negative
    half-range and conservatively otherwise. *)

type t = private {
  lo : int64;
  hi : int64;
}

val make : int64 -> int64 -> t
(** Raises [Invalid_argument] unless [lo <=u hi]. *)

val point : int64 -> t
val top : t
val bool_any : t
(** The interval [0, 1]. *)

val is_point : t -> int64 option
val contains : t -> int64 -> bool
val hull : t -> t -> t

val definitely_true : t -> bool
(** The interval excludes 0, so any expression with this interval is a
    satisfied condition. *)

val definitely_false : t -> bool
(** The interval is exactly [0, 0]. *)

val binop : Pbse_ir.Types.binop -> t -> t -> t
val unop : Pbse_ir.Types.unop -> t -> t

val eval : (int -> t) -> Expr.t -> t
(** [eval lookup e] where [lookup i] bounds input byte [i]; results are
    memoised across shared subexpressions within the call. *)

val to_string : t -> string
