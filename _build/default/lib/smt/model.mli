(** Assignments of symbolic input bytes, i.e. solver models and seeds.

    A model maps input-byte indices to values in [0, 255]; unmentioned
    indices default to 0 (the engine's symbolic files are zero-filled,
    like KLEE's). Persistent, so states can share and extend models. *)

type t

val empty : t

val of_bytes : bytes -> t
(** Every byte of the buffer becomes a binding (index 0 upwards). *)

val of_string : string -> t

val get : t -> int -> int
val set : t -> int -> int -> t

val bindings : t -> (int * int) list
(** Sorted by index. *)

val eval : t -> Expr.t -> int64

val satisfies : t -> Expr.t list -> bool
(** Whether every constraint evaluates truthy under the model. *)

val to_bytes : size:int -> t -> bytes
(** Concrete input file of [size] bytes (default 0). *)

val union : t -> t -> t
(** [union a b] prefers bindings of [a]. *)
