lib/smt/interval.mli: Expr Pbse_ir
