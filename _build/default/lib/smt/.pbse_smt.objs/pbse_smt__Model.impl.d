lib/smt/model.ml: Bytes Char Expr Int List Map Semantics
