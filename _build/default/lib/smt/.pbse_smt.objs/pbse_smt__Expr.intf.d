lib/smt/expr.mli: Pbse_ir
