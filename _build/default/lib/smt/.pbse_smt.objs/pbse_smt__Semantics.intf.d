lib/smt/semantics.mli: Pbse_ir
