lib/smt/semantics.ml: Int64 Pbse_ir
