lib/smt/expr.ml: Buffer Hashtbl Int Int64 List Pbse_ir Printf Semantics Weak
