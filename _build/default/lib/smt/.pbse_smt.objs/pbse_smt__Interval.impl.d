lib/smt/interval.ml: Expr Hashtbl Int64 Pbse_ir Printf
