lib/smt/model.mli: Expr
