lib/smt/solver.ml: Array Bytes Expr Hashtbl Int Int64 Interval List Model Semantics
