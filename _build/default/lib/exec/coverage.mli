(** Global basic-block coverage, the paper's headline metric.

    Tracks which global block ids (see {!Pbse_ir.Cfg}) have ever been
    entered by any execution state, plus a version counter the heuristic
    searchers use to know when to refresh their distance maps. *)

type t

val create : int -> t
(** [create nblocks]. *)

val cover : t -> int -> bool
(** Marks a block covered; returns whether it was new. *)

val is_covered : t -> int -> bool
val count : t -> int

val version : t -> int
(** Increments every time a new block is covered. *)

val covered_ids : t -> int list
(** Sorted ids of covered blocks. *)

val snapshot : t -> bool array
(** A copy of the covered flags. *)
