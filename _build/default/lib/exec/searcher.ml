module Rng = Pbse_util.Rng
module Cfg = Pbse_ir.Cfg

type t = {
  name : string;
  add : State.t -> unit;
  fork : parent:State.t -> State.t -> unit;
  remove : State.t -> unit;
  select : unit -> State.t option;
  size : unit -> int;
}

(* --- dfs / bfs ------------------------------------------------------------ *)

let stacklike name ~push_front =
  let states = ref [] in
  let count = ref 0 in
  let add st =
    states := (if push_front then st :: !states else !states @ [ st ]);
    incr count
  in
  let remove st =
    let before = List.length !states in
    states := List.filter (fun s -> s.State.id <> st.State.id) !states;
    count := !count - (before - List.length !states)
  in
  {
    name;
    add;
    fork = (fun ~parent:_ child -> add child);
    remove;
    select = (fun () -> match !states with [] -> None | st :: _ -> Some st);
    size = (fun () -> !count);
  }

let dfs () = stacklike "dfs" ~push_front:true

(* BFS appends both new and forked states, selecting the oldest. The
   quadratic [@] append is avoided with a two-list queue. *)
let bfs () =
  let front = ref [] and back = ref [] in
  let count = ref 0 in
  let add st =
    back := st :: !back;
    incr count
  in
  let rec head () =
    match !front with
    | st :: _ -> Some st
    | [] ->
      if !back = [] then None
      else begin
        front := List.rev !back;
        back := [];
        head ()
      end
  in
  let remove st =
    let filter l = List.filter (fun s -> s.State.id <> st.State.id) l in
    let before = List.length !front + List.length !back in
    front := filter !front;
    back := filter !back;
    count := !count - (before - (List.length !front + List.length !back))
  in
  {
    name = "bfs";
    add;
    fork = (fun ~parent:_ child -> add child);
    remove;
    select = head;
    size = (fun () -> !count);
  }

(* --- random-state --------------------------------------------------------- *)

(* Dynamic array with swap-removal for O(1) uniform selection. *)
type pool = {
  mutable arr : State.t option array;
  mutable len : int;
  index : (int, int) Hashtbl.t; (* state id -> slot *)
}

let pool_create () = { arr = Array.make 64 None; len = 0; index = Hashtbl.create 64 }

let pool_add p st =
  if p.len >= Array.length p.arr then begin
    let bigger = Array.make (2 * Array.length p.arr) None in
    Array.blit p.arr 0 bigger 0 p.len;
    p.arr <- bigger
  end;
  p.arr.(p.len) <- Some st;
  Hashtbl.replace p.index st.State.id p.len;
  p.len <- p.len + 1

let pool_remove p st =
  match Hashtbl.find_opt p.index st.State.id with
  | None -> ()
  | Some slot ->
    Hashtbl.remove p.index st.State.id;
    let last = p.len - 1 in
    (match p.arr.(last) with
     | Some moved when slot <> last ->
       p.arr.(slot) <- Some moved;
       Hashtbl.replace p.index moved.State.id slot
     | Some _ | None -> ());
    p.arr.(last) <- None;
    p.len <- last

let pool_get p i = match p.arr.(i) with Some st -> st | None -> assert false

let random_state rng =
  let p = pool_create () in
  {
    name = "random-state";
    add = pool_add p;
    fork = (fun ~parent:_ child -> pool_add p child);
    remove = pool_remove p;
    select = (fun () -> if p.len = 0 then None else Some (pool_get p (Rng.int rng p.len)));
    size = (fun () -> p.len);
  }

(* --- random-path ----------------------------------------------------------- *)

(* KLEE's PTree: leaves hold states, internal nodes remember forks.
   Selection walks from a root picking a uniformly random live child, so
   deep subtrees (loops) don't dominate. [live] counts live leaves below. *)
type node = {
  mutable kind : node_kind;
  mutable live : int;
  mutable up : node option;
}

and node_kind =
  | Leaf of State.t
  | Branch of node * node
  | Dead

let random_path rng =
  let roots = ref [] in
  let by_state : (int, node) Hashtbl.t = Hashtbl.create 256 in
  let count = ref 0 in
  let rec bump node delta =
    node.live <- node.live + delta;
    match node.up with Some parent -> bump parent delta | None -> ()
  in
  let add st =
    let leaf = { kind = Leaf st; live = 1; up = None } in
    Hashtbl.replace by_state st.State.id leaf;
    roots := leaf :: !roots;
    incr count
  in
  let fork ~parent child =
    match Hashtbl.find_opt by_state parent.State.id with
    | None -> add child
    | Some node ->
      let left = { kind = Leaf parent; live = 1; up = Some node } in
      let right = { kind = Leaf child; live = 1; up = Some node } in
      node.kind <- Branch (left, right);
      Hashtbl.replace by_state parent.State.id left;
      Hashtbl.replace by_state child.State.id right;
      bump node 1;
      (* the branch node itself now holds two leaves but carried live=1 *)
      incr count
  in
  let remove st =
    match Hashtbl.find_opt by_state st.State.id with
    | None -> ()
    | Some node ->
      Hashtbl.remove by_state st.State.id;
      node.kind <- Dead;
      bump node (-1);
      decr count
  in
  let select () =
    let live_roots = List.filter (fun n -> n.live > 0) !roots in
    (* prune dead roots opportunistically *)
    roots := live_roots;
    match live_roots with
    | [] -> None
    | _ ->
      let root = List.nth live_roots (Rng.int rng (List.length live_roots)) in
      let rec walk node =
        match node.kind with
        | Leaf st -> Some st
        | Dead -> None
        | Branch (l, r) ->
          if l.live = 0 then walk r
          else if r.live = 0 then walk l
          else if Rng.bool rng then walk l
          else walk r
      in
      walk root
  in
  {
    name = "random-path";
    add;
    fork;
    remove;
    select;
    size = (fun () -> !count);
  }

(* --- weighted heuristics (covnew, md2u) ------------------------------------ *)

(* Distance-to-uncovered map, refreshed lazily as coverage grows. *)
type dmap = {
  cfg : Cfg.t;
  coverage : Coverage.t;
  mutable dist : int array;
  mutable at_version : int;
}

let dmap_create cfg coverage =
  { cfg; coverage; dist = [||]; at_version = -1 }

let dmap_get d gid =
  if d.at_version < 0 || Coverage.version d.coverage > d.at_version + 8 then begin
    d.dist <- Cfg.distances_to d.cfg ~targets:(fun g -> not (Coverage.is_covered d.coverage g));
    d.at_version <- Coverage.version d.coverage
  end;
  if Array.length d.dist = 0 then max_int else d.dist.(gid)

let weighted name rng cfg coverage ~weight_of =
  let p = pool_create () in
  let dmap = dmap_create cfg coverage in
  let cum = ref [||] in
  let snapshot_states = ref [||] in
  let since_snapshot = ref max_int in
  let rebuild () =
    let n = p.len in
    let states = Array.init n (fun i -> pool_get p i) in
    let weights =
      Array.map
        (fun st ->
          let gid = Cfg.id cfg st.State.fidx st.State.bidx in
          let dist = dmap_get dmap gid in
          weight_of st dist)
        states
    in
    let acc = ref 0.0 in
    let cumulative =
      Array.map
        (fun w ->
          acc := !acc +. (w +. 1e-9);
          !acc)
        weights
    in
    cum := cumulative;
    snapshot_states := states;
    since_snapshot := 0
  in
  let select () =
    if p.len = 0 then None
    else begin
      if !since_snapshot >= 64 || Array.length !snapshot_states = 0 then rebuild ();
      incr since_snapshot;
      let cumulative = !cum and states = !snapshot_states in
      let n = Array.length states in
      if n = 0 then None
      else begin
        let total = cumulative.(n - 1) in
        let rec attempt tries =
          if tries = 0 then begin
            rebuild ();
            if p.len = 0 then None else Some (pool_get p (Rng.int rng p.len))
          end
          else begin
            let r = Rng.float rng total in
            (* binary search for the first cumulative weight > r *)
            let lo = ref 0 and hi = ref (n - 1) in
            while !lo < !hi do
              let mid = (!lo + !hi) / 2 in
              if cumulative.(mid) > r then hi := mid else lo := mid + 1
            done;
            let st = states.(!lo) in
            if Hashtbl.mem p.index st.State.id then Some st else attempt (tries - 1)
          end
        in
        attempt 8
      end
    end
  in
  {
    name;
    add =
      (fun st ->
        pool_add p st;
        since_snapshot := max_int);
    fork =
      (fun ~parent:_ child ->
        pool_add p child;
        since_snapshot := max_int);
    remove = pool_remove p;
    select;
    size = (fun () -> p.len);
  }

let md2u rng cfg coverage =
  let weight_of _st dist =
    if dist = max_int then 1e-6 else 1.0 /. float_of_int (1 + dist)
  in
  weighted "md2u" rng cfg coverage ~weight_of

let covnew rng cfg coverage =
  let weight_of st dist =
    let base = if dist = max_int then 1e-6 else 1.0 /. float_of_int (1 + dist) in
    if st.State.fresh_cover then 8.0 *. base else base
  in
  weighted "covnew" rng cfg coverage ~weight_of

(* --- composition ------------------------------------------------------------ *)

let interleave name subs =
  (match subs with [] -> invalid_arg "Searcher.interleave: no sub-searchers" | _ -> ());
  let subs = Array.of_list subs in
  let turn = ref 0 in
  {
    name;
    add = (fun st -> Array.iter (fun s -> s.add st) subs);
    fork = (fun ~parent child -> Array.iter (fun s -> s.fork ~parent child) subs);
    remove = (fun st -> Array.iter (fun s -> s.remove st) subs);
    select =
      (fun () ->
        let s = subs.(!turn mod Array.length subs) in
        incr turn;
        s.select ());
    size = (fun () -> subs.(0).size ());
  }

let default rng cfg coverage =
  interleave "default" [ random_path (Rng.split rng); covnew (Rng.split rng) cfg coverage ]

let names = [ "default"; "random-path"; "random-state"; "covnew"; "md2u"; "dfs"; "bfs" ]

let by_name name =
  match name with
  | "dfs" -> Some (fun _rng _cfg _cov -> dfs ())
  | "bfs" -> Some (fun _rng _cfg _cov -> bfs ())
  | "random-state" -> Some (fun rng _cfg _cov -> random_state rng)
  | "random-path" -> Some (fun rng _cfg _cov -> random_path rng)
  | "covnew" -> Some covnew
  | "md2u" -> Some md2u
  | "default" -> Some default
  | _ -> None
