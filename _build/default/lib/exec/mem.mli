(** Symbolic byte-object memory.

    Memory is a set of objects, each a fixed-size byte buffer whose cells
    hold symbolic expressions. Pointers are ordinary 64-bit values: the
    object id lives in bits 40..62 and the byte offset in bits 0..39, so
    pointer arithmetic is plain integer arithmetic and an out-of-bounds
    offset (including a negative one, which borrows into the id field) is
    detected at access time — the engine's memory-safety oracle.

    The store is persistent: forking a state shares the whole heap, and a
    write copies only the path to one object cell. *)

module Ptr : sig
  val make : int -> int -> int64
  (** [make obj off] encodes a pointer. *)

  val obj : int64 -> int
  val off : int64 -> int
  val null : int64

  val is_null : int64 -> bool
  (** True for offset-0 of object 0 — and for any "pointer" whose object
      field is 0, which is how stray small integers used as addresses are
      caught. *)
end

type fault =
  | Out_of_bounds of { obj : int; off : int; size : int; write : bool }
  | Unallocated of { obj : int; write : bool }
  | Use_after_free of { obj : int }
  | Null_access of { write : bool }
  | Bad_free of { addr : int64 }

val fault_to_string : fault -> string

type t

val empty : t

val alloc : t -> size:int -> t * int64
(** Fresh zero-initialised object; returns its base pointer. Sizes larger
    than {!max_object_size} or negative yield a null pointer and no
    allocation, modelling a failed [malloc]. *)

val alloc_bytes : t -> bytes -> t * int64
(** Fresh object initialised with concrete contents. *)

val max_object_size : int

val free : t -> int64 -> (t, fault) result
(** Freeing null is a no-op; freeing a non-base pointer, an unknown or an
    already-freed object is a fault. *)

val size_of : t -> int64 -> int option
(** Size of the live object the pointer refers to. *)

val object_count : t -> int

val load : t -> int64 -> Pbse_ir.Types.width -> (Pbse_smt.Expr.t, fault) result
(** Little-endian load at a concrete address; the result is zero-extended
    to 64 bits. *)

val store : t -> int64 -> Pbse_ir.Types.width -> Pbse_smt.Expr.t -> (t, fault) result
