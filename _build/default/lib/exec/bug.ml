type t = {
  kind : string;
  gid : int;
  location : string;
  detail : string;
  witness : bytes;
  vtime : int;
  state_id : int;
  confirmed : bool;
}

let dedup_key t = (t.gid, t.kind)

let to_string t =
  Printf.sprintf "[%s] %s at %s (t=%d, witness %d bytes%s): %s" t.kind
    (if t.confirmed then "confirmed" else "unconfirmed")
    t.location t.vtime (Bytes.length t.witness)
    (if t.confirmed then ", replayed" else "")
    t.detail
