type t = {
  covered : bool array;
  mutable count : int;
  mutable version : int;
}

let create nblocks = { covered = Array.make nblocks false; count = 0; version = 0 }

let cover t gid =
  if t.covered.(gid) then false
  else begin
    t.covered.(gid) <- true;
    t.count <- t.count + 1;
    t.version <- t.version + 1;
    true
  end

let is_covered t gid = t.covered.(gid)
let count t = t.count
let version t = t.version

let covered_ids t =
  let acc = ref [] in
  for gid = Array.length t.covered - 1 downto 0 do
    if t.covered.(gid) then acc := gid :: !acc
  done;
  !acc

let snapshot t = Array.copy t.covered
