(** Fast concrete interpreter.

    Executes an IR program on a concrete input file. It is the "concrete
    executor" half of concolic execution, the replayer that confirms
    generated bug test cases, and the reference the symbolic executor is
    property-tested against. Semantics (including memory faults) match the
    symbolic executor exactly; scalar operations come from
    {!Pbse_smt.Semantics}. *)

type outcome =
  | Exit of int64 (* main returned *)
  | Fault of {
      fault : Mem.fault option; (* None for non-memory faults *)
      kind : string; (* stable fault class, e.g. "oob-read" *)
      fidx : int;
      bidx : int;
      detail : string;
    }
  | Halted of { message : string; fidx : int; bidx : int }
  | Out_of_fuel

type result = {
  outcome : outcome;
  steps : int; (* instructions executed, terminators included *)
  blocks_entered : int;
  output : int64 list; (* values passed to the [out] intrinsic, in order *)
}

val fault_class : Mem.fault -> string
(** Stable class string for a memory fault ("oob-read", "oob-write",
    "null-deref", "use-after-free", "bad-free"). *)

val run :
  ?fuel:int ->
  ?on_block:(int -> int -> unit) ->
  Pbse_ir.Types.program ->
  input:bytes ->
  result
(** [run program ~input] executes [main] (no arguments) until it returns,
    faults or exhausts [fuel] (default 50 million steps). [on_block] is
    invoked on every basic-block entry with function and block index —
    the hook BBV gathering and trace recording attach to. *)
