(** Bug reports produced by the symbolic executor's oracles.

    A report carries the fault class, the faulting location, the witness
    input generated from the solver model, and whether replaying that
    input through the concrete interpreter reproduced a fault of the same
    class (KLEE's "test case" made self-checking). Reports are deduplicated
    on (location, kind). *)

type t = {
  kind : string; (* "oob-read", "oob-write", "div-by-zero", ... *)
  gid : int; (* global block id of the faulting instruction *)
  location : string; (* human-readable, e.g. "parse_header/.4" *)
  detail : string;
  witness : bytes; (* input file triggering the bug *)
  vtime : int; (* virtual time of discovery *)
  state_id : int;
  confirmed : bool; (* concrete replay reproduced the fault class *)
}

val dedup_key : t -> int * string

val to_string : t -> string
