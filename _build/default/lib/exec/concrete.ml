open Pbse_ir.Types
module Semantics = Pbse_smt.Semantics

type outcome =
  | Exit of int64
  | Fault of {
      fault : Mem.fault option;
      kind : string;
      fidx : int;
      bidx : int;
      detail : string;
    }
  | Halted of { message : string; fidx : int; bidx : int }
  | Out_of_fuel

type result = {
  outcome : outcome;
  steps : int;
  blocks_entered : int;
  output : int64 list;
}

let fault_class = function
  | Mem.Out_of_bounds { write; _ } | Mem.Unallocated { write; _ } ->
    if write then "oob-write" else "oob-read"
  | Mem.Null_access { write } -> if write then "null-deref" else "null-deref"
  | Mem.Use_after_free _ -> "use-after-free"
  | Mem.Bad_free _ -> "bad-free"

(* Concrete heap: dense object table addressed by the Ptr codec. *)
type cobj = {
  size : int;
  data : bytes;
  mutable freed : bool;
}

type heap = {
  mutable objects : cobj option array;
  mutable count : int;
}

let heap_create () = { objects = Array.make 64 None; count = 0 }

let heap_alloc heap ~size =
  if size < 0 || size > Mem.max_object_size then Mem.Ptr.null
  else begin
    if heap.count >= Array.length heap.objects then begin
      let bigger = Array.make (2 * Array.length heap.objects) None in
      Array.blit heap.objects 0 bigger 0 heap.count;
      heap.objects <- bigger
    end;
    heap.objects.(heap.count) <- Some { size; data = Bytes.make size '\000'; freed = false };
    heap.count <- heap.count + 1;
    Mem.Ptr.make heap.count 0 (* ids start at 1 *)
  end

let heap_find heap id =
  if id >= 1 && id <= heap.count then heap.objects.(id - 1) else None

let heap_locate heap ptr ~len ~write =
  if Mem.Ptr.is_null ptr then Error (Mem.Null_access { write })
  else
    let id = Mem.Ptr.obj ptr and off = Mem.Ptr.off ptr in
    match heap_find heap id with
    | None -> Error (Mem.Unallocated { obj = id; write })
    | Some o ->
      if o.freed then Error (Mem.Use_after_free { obj = id })
      else if off < 0 || off + len > o.size then
        Error (Mem.Out_of_bounds { obj = id; off; size = o.size; write })
      else Ok o

let heap_load heap ptr width =
  let len = bytes_of_width width in
  match heap_locate heap ptr ~len ~write:false with
  | Error f -> Error f
  | Ok o ->
    let off = Mem.Ptr.off ptr in
    let rec combine k acc =
      if k < 0 then acc
      else
        combine (k - 1)
          (Int64.logor (Int64.shift_left acc 8)
             (Int64.of_int (Char.code (Bytes.get o.data (off + k)))))
    in
    Ok (combine (len - 1) 0L)

let heap_store heap ptr width v =
  let len = bytes_of_width width in
  match heap_locate heap ptr ~len ~write:true with
  | Error f -> Error f
  | Ok o ->
    let off = Mem.Ptr.off ptr in
    for k = 0 to len - 1 do
      Bytes.set o.data (off + k)
        (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * k)) 0xFFL)))
    done;
    Ok ()

let heap_free heap ptr =
  if ptr = Mem.Ptr.null then Ok ()
  else
    match heap_find heap (Mem.Ptr.obj ptr) with
    | None -> Error (Mem.Bad_free { addr = ptr })
    | Some o ->
      if o.freed || Mem.Ptr.off ptr <> 0 then Error (Mem.Bad_free { addr = ptr })
      else begin
        o.freed <- true;
        Ok ()
      end

(* --- interpreter ---------------------------------------------------------- *)

type frame = {
  regs : int64 array;
  ret_reg : int option;
  ret_to : (int * int * int) option; (* fidx, bidx, next inst index *)
}

exception Stop of outcome

let max_call_depth = 512

let run ?(fuel = 50_000_000) ?(on_block = fun _ _ -> ()) program ~input =
  let index = func_index program in
  let heap = heap_create () in
  let steps = ref 0 in
  let blocks = ref 0 in
  let output = ref [] in
  let fidx = ref program.main in
  let bidx = ref 0 in
  let iidx = ref 0 in
  let stack = ref [] in
  let regs = ref (Array.make (program.funcs.(program.main)).nregs 0L) in
  let depth = ref 0 in
  let enter_block f b =
    incr blocks;
    on_block f b
  in
  let fault f =
    raise
      (Stop
         (Fault
            {
              fault = Some f;
              kind = fault_class f;
              fidx = !fidx;
              bidx = !bidx;
              detail = Mem.fault_to_string f;
            }))
  in
  let div_fault () =
    raise
      (Stop
         (Fault
            { fault = None; kind = "div-by-zero"; fidx = !fidx; bidx = !bidx; detail = "division by zero" }))
  in
  let operand = function
    | Const c -> c
    | Reg r -> !regs.(r)
  in
  let spend () =
    incr steps;
    if !steps > fuel then raise (Stop Out_of_fuel)
  in
  let do_call dst name args =
    if is_intrinsic name then begin
      (match (name, args) with
      | "in_byte", [ a ] ->
        let i = Int64.to_int (operand a) in
        let v =
          if Int64.unsigned_compare (operand a) (Int64.of_int (Bytes.length input)) < 0
          then Int64.of_int (Char.code (Bytes.get input i))
          else 0L
        in
        (match dst with Some d -> !regs.(d) <- v | None -> ())
      | "in_size", [] ->
        let v = Int64.of_int (Bytes.length input) in
        (match dst with Some d -> !regs.(d) <- v | None -> ())
      | "out", [ a ] ->
        output := operand a :: !output;
        (match dst with Some d -> !regs.(d) <- 0L | None -> ())
      | ("in_byte" | "in_size" | "out"), _ ->
        raise
          (Stop
             (Halted
                { message = "intrinsic arity error: " ^ name; fidx = !fidx; bidx = !bidx }))
      | _ -> assert false);
      iidx := !iidx + 1
    end
    else begin
      if !depth >= max_call_depth then
        raise (Stop (Halted { message = "call stack overflow"; fidx = !fidx; bidx = !bidx }));
      let callee =
        match Hashtbl.find_opt index name with
        | Some i -> i
        | None ->
          raise (Stop (Halted { message = "unknown function " ^ name; fidx = !fidx; bidx = !bidx }))
      in
      let f = program.funcs.(callee) in
      let new_regs = Array.make f.nregs 0L in
      List.iteri (fun i a -> if i < f.nparams then new_regs.(i) <- operand a) args;
      stack := { regs = !regs; ret_reg = dst; ret_to = Some (!fidx, !bidx, !iidx + 1) } :: !stack;
      incr depth;
      regs := new_regs;
      fidx := callee;
      bidx := 0;
      iidx := 0;
      enter_block callee 0
    end
  in
  let do_ret v =
    match !stack with
    | [] -> raise (Stop (Exit (match v with Some o -> operand o | None -> 0L)))
    | frame :: rest ->
      let value = match v with Some o -> operand o | None -> 0L in
      stack := rest;
      decr depth;
      let saved_regs = frame.regs in
      (match frame.ret_reg with Some d -> saved_regs.(d) <- value | None -> ());
      regs := saved_regs;
      (match frame.ret_to with
       | Some (f, b, i) ->
         fidx := f;
         bidx := b;
         iidx := i
       | None -> assert false)
  in
  let exec_inst inst =
    match inst with
    | Bin (dst, op, a, b) ->
      let va = operand a and vb = operand b in
      (match op with
       | Udiv | Sdiv | Urem | Srem when vb = 0L -> div_fault ()
       | _ -> ());
      !regs.(dst) <- Semantics.binop op va vb;
      iidx := !iidx + 1
    | Un (dst, op, a) ->
      !regs.(dst) <- Semantics.unop op (operand a);
      iidx := !iidx + 1
    | Load (dst, addr, w) ->
      (match heap_load heap (operand addr) w with
       | Ok v ->
         !regs.(dst) <- v;
         iidx := !iidx + 1
       | Error f -> fault f)
    | Store (addr, v, w) ->
      (match heap_store heap (operand addr) w (operand v) with
       | Ok () -> iidx := !iidx + 1
       | Error f -> fault f)
    | Alloc (dst, size) ->
      !regs.(dst) <- heap_alloc heap ~size:(Int64.to_int (operand size));
      iidx := !iidx + 1
    | Free p ->
      (match heap_free heap (operand p) with
       | Ok () -> iidx := !iidx + 1
       | Error f -> fault f)
    | Call (dst, name, args) -> do_call dst name args
    | Select (dst, c, a, b) ->
      !regs.(dst) <- (if Semantics.truthy (operand c) then operand a else operand b);
      iidx := !iidx + 1
  in
  let exec_term term =
    let goto b =
      bidx := b;
      iidx := 0;
      enter_block !fidx b
    in
    match term with
    | Jmp b -> goto b
    | Br (c, t, e) -> goto (if Semantics.truthy (operand c) then t else e)
    | Switch (scrut, cases, default) ->
      let v = operand scrut in
      let rec pick = function
        | [] -> default
        | (case_v, target) :: rest -> if v = case_v then target else pick rest
      in
      goto (pick cases)
    | Ret v -> do_ret v
    | Halt message -> raise (Stop (Halted { message; fidx = !fidx; bidx = !bidx }))
  in
  let finish outcome =
    { outcome; steps = !steps; blocks_entered = !blocks; output = List.rev !output }
  in
  try
    enter_block !fidx 0;
    while true do
      let f = program.funcs.(!fidx) in
      let block = f.blocks.(!bidx) in
      if !iidx < Array.length block.insts then begin
        spend ();
        exec_inst block.insts.(!iidx)
      end
      else begin
        spend ();
        exec_term block.term
      end
    done;
    assert false
  with Stop outcome -> finish outcome
