(** State-selection strategies (KLEE's "searchers").

    The executor asks the searcher which state to run next; the searcher
    learns about new, forked and finished states through callbacks. All
    strategies from the paper's Table I are implemented:

    - [dfs] / [bfs]: newest / oldest state first;
    - [random_state]: uniform over pending states;
    - [random_path]: KLEE's execution-tree walk — from the root, pick a
      random child at every branch until a leaf state is reached, which
      biases towards shallow, rarely-visited subtrees;
    - [covnew] and [md2u]: weighted-random heuristics based on the static
      minimum distance to uncovered code (md2u), with [covnew] boosting
      states that recently covered new instructions;
    - [interleave]: round-robin over sub-searchers; KLEE's default is
      random-path interleaved with covnew. *)

type t = {
  name : string;
  add : State.t -> unit;
  fork : parent:State.t -> State.t -> unit;
  remove : State.t -> unit;
  select : unit -> State.t option;
  size : unit -> int;
}

val dfs : unit -> t
val bfs : unit -> t
val random_state : Pbse_util.Rng.t -> t
val random_path : Pbse_util.Rng.t -> t
val covnew : Pbse_util.Rng.t -> Pbse_ir.Cfg.t -> Coverage.t -> t
val md2u : Pbse_util.Rng.t -> Pbse_ir.Cfg.t -> Coverage.t -> t

val interleave : string -> t list -> t
(** Shares the state set across sub-searchers, alternating selection. *)

val default : Pbse_util.Rng.t -> Pbse_ir.Cfg.t -> Coverage.t -> t
(** KLEE's default: random-path and covnew, interleaved. *)

val names : string list
(** All selectable searcher names. *)

val by_name :
  string -> (Pbse_util.Rng.t -> Pbse_ir.Cfg.t -> Coverage.t -> t) option
(** Factory lookup: "dfs", "bfs", "random-state", "random-path",
    "covnew", "md2u", "default". *)
