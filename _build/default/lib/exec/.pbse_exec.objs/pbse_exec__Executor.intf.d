lib/exec/executor.mli: Bug Coverage Pbse_ir Pbse_smt Pbse_util Searcher State
