lib/exec/executor.ml: Array Bug Bytes Concrete Coverage Hashtbl Int64 List Mem Pbse_ir Pbse_smt Pbse_util Printf Searcher State
