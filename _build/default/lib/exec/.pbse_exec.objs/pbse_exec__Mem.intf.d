lib/exec/mem.mli: Pbse_ir Pbse_smt
