lib/exec/state.ml: Array List Mem Pbse_smt
