lib/exec/state.mli: Mem Pbse_smt
