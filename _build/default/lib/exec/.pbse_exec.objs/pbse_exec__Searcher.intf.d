lib/exec/searcher.mli: Coverage Pbse_ir Pbse_util State
