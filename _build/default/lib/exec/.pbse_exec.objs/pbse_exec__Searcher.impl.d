lib/exec/searcher.ml: Array Coverage Hashtbl List Pbse_ir Pbse_util State
