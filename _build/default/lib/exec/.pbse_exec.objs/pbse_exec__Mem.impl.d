lib/exec/mem.ml: Bytes Char Int Int64 Map Pbse_ir Pbse_smt Printf
