lib/exec/concrete.ml: Array Bytes Char Hashtbl Int64 List Mem Pbse_ir Pbse_smt
