lib/exec/coverage.ml: Array
