lib/exec/concrete.mli: Mem Pbse_ir
