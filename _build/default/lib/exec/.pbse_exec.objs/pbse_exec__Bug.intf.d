lib/exec/bug.mli:
