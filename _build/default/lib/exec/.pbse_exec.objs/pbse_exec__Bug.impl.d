lib/exec/bug.ml: Bytes Printf
