lib/exec/coverage.mli:
