module Expr = Pbse_smt.Expr
module Imap = Map.Make (Int)
module T = Pbse_ir.Types

module Ptr = struct
  let off_bits = 40
  let off_mask = Int64.sub (Int64.shift_left 1L off_bits) 1L

  let make obj off =
    Int64.logor
      (Int64.shift_left (Int64.of_int obj) off_bits)
      (Int64.logand (Int64.of_int off) off_mask)

  let obj p = Int64.to_int (Int64.shift_right_logical p off_bits)
  let off p = Int64.to_int (Int64.logand p off_mask)
  let null = 0L
  let is_null p = obj p = 0
end

type fault =
  | Out_of_bounds of { obj : int; off : int; size : int; write : bool }
  | Unallocated of { obj : int; write : bool }
  | Use_after_free of { obj : int }
  | Null_access of { write : bool }
  | Bad_free of { addr : int64 }

let fault_to_string = function
  | Out_of_bounds { obj; off; size; write } ->
    Printf.sprintf "out-of-bounds %s: object %d, offset %d, size %d"
      (if write then "write" else "read")
      obj off size
  | Unallocated { obj; write } ->
    Printf.sprintf "%s of unallocated object %d" (if write then "write" else "read") obj
  | Use_after_free { obj } -> Printf.sprintf "use after free of object %d" obj
  | Null_access { write } -> Printf.sprintf "null %s" (if write then "write" else "read")
  | Bad_free { addr } -> Printf.sprintf "invalid free of 0x%Lx" addr

(* Object contents: a concrete backing buffer plus a persistent overlay of
   symbolic writes, so forked states share everything untouched. *)
type obj = {
  size : int;
  init : bytes;
  writes : Expr.t Imap.t;
  freed : bool;
}

type t = {
  objects : obj Imap.t;
  next_id : int;
}

let empty = { objects = Imap.empty; next_id = 1 }

let max_object_size = 1 lsl 20

let object_count t = Imap.cardinal t.objects

let alloc t ~size =
  if size < 0 || size > max_object_size then (t, Ptr.null)
  else
    let o = { size; init = Bytes.make size '\000'; writes = Imap.empty; freed = false } in
    ( { objects = Imap.add t.next_id o t.objects; next_id = t.next_id + 1 },
      Ptr.make t.next_id 0 )

let alloc_bytes t contents =
  let o =
    { size = Bytes.length contents; init = contents; writes = Imap.empty; freed = false }
  in
  ({ objects = Imap.add t.next_id o t.objects; next_id = t.next_id + 1 }, Ptr.make t.next_id 0)

let free t ptr =
  if ptr = Ptr.null then Ok t
  else
    let id = Ptr.obj ptr in
    match Imap.find_opt id t.objects with
    | None -> Error (Bad_free { addr = ptr })
    | Some o ->
      if o.freed then Error (Bad_free { addr = ptr })
      else if Ptr.off ptr <> 0 then Error (Bad_free { addr = ptr })
      else Ok { t with objects = Imap.add id { o with freed = true } t.objects }

let size_of t ptr =
  match Imap.find_opt (Ptr.obj ptr) t.objects with
  | Some o when not o.freed -> Some o.size
  | Some _ | None -> None

let locate t ptr ~len ~write =
  if Ptr.is_null ptr then Error (Null_access { write })
  else
    let id = Ptr.obj ptr and off = Ptr.off ptr in
    match Imap.find_opt id t.objects with
    | None -> Error (Unallocated { obj = id; write })
    | Some o ->
      if o.freed then Error (Use_after_free { obj = id })
      else if off < 0 || off + len > o.size then
        Error (Out_of_bounds { obj = id; off; size = o.size; write })
      else Ok (id, o, off)

let load_cell o i =
  match Imap.find_opt i o.writes with
  | Some e -> e
  | None -> Expr.const (Int64.of_int (Char.code (Bytes.get o.init i)))

let load t ptr width =
  let len = T.bytes_of_width width in
  match locate t ptr ~len ~write:false with
  | Error f -> Error f
  | Ok (_, o, off) ->
    (* assemble little-endian: byte k contributes bits 8k..8k+7 *)
    let rec combine k acc =
      if k < 0 then acc
      else
        let cell = load_cell o (off + k) in
        let shifted =
          if k = 0 then cell else Expr.bin T.Shl cell (Expr.of_int (8 * k))
        in
        combine (k - 1) (Expr.bin T.Or acc shifted)
    in
    Ok (combine (len - 1) Expr.zero)

let byte_of e k =
  if k = 0 then Expr.bin T.And e (Expr.const 0xFFL)
  else Expr.bin T.And (Expr.bin T.Lshr e (Expr.of_int (8 * k))) (Expr.const 0xFFL)

let store t ptr width value =
  let len = T.bytes_of_width width in
  match locate t ptr ~len ~write:true with
  | Error f -> Error f
  | Ok (id, o, off) ->
    let rec write_bytes k writes =
      if k >= len then writes
      else
        let b = byte_of value k in
        write_bytes (k + 1) (Imap.add (off + k) b writes)
    in
    let o = { o with writes = write_bytes 0 o.writes } in
    Ok { t with objects = Imap.add id o t.objects }
