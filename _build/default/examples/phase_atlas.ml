(* Phase atlas: concolic execution + phase division for every bundled
   target, printing the paper's Fig-4-style strips side by side.

     dune exec examples/phase_atlas.exe

   A strip has one letter per BBV interval (a cluster each); uppercase
   letters mark trap phases — the input-bounded loops that trap symbolic
   execution. Compare readelf (two big table loops) against tcpdump
   (shallow packet printing). *)

module Registry = Pbse_targets.Registry
module Concolic = Pbse_concolic.Concolic
module Phase = Pbse_phase.Phase

let atlas_for (t : Registry.t) =
  let prog = Registry.program t in
  let seed = Registry.default_seed t in
  let probe = Pbse_exec.Concrete.run prog ~input:seed in
  let interval_length = max 50 (probe.Pbse_exec.Concrete.steps / 100) in
  let clock = Pbse_util.Vclock.create () in
  let exec = Pbse_exec.Executor.create ~clock prog ~input:seed in
  let concolic = Concolic.run ~interval_length exec (Pbse_concolic.Trace.indexer ()) in
  let division = Phase.divide (Pbse_util.Rng.create 1) concolic.Concolic.bbvs in
  Printf.printf "%-10s (%4d blocks, seed %4dB)  k=%-2d traps=%d\n" t.Registry.name
    (Pbse_ir.Types.block_count prog)
    (Bytes.length seed) division.Phase.k division.Phase.trap_count;
  Printf.printf "  %s\n" (Phase.render_strip division);
  List.iter
    (fun (p : Phase.phase) ->
      if p.Phase.trap then
        Printf.printf "  trap phase %d: %d intervals, longest run %d, enters at t=%d\n"
          p.Phase.pid (Array.length p.Phase.intervals) p.Phase.longest_run
          p.Phase.first_vtime)
    division.Phase.phases

let () = List.iter atlas_for Registry.all
