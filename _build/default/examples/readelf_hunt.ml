(* Bug hunt on the readelf analog: pbSE vs the best KLEE searcher.

     dune exec examples/readelf_hunt.exe

   Reproduces the paper's central workflow on one target: pick a seed with
   the §III-B4 heuristic, run pbSE for a virtual hour, and compare against
   KLEE's random-path searcher on the same budget. *)

module Registry = Pbse_targets.Registry
module Driver = Pbse.Driver

let hour = 120_000

let () =
  let t = Option.get (Registry.by_name "readelf") in
  let prog = Registry.program t in

  (* the paper's seed selection: among the ten smallest seeds, keep the
     one with the best concrete coverage *)
  let pool = List.map snd t.Registry.seeds in
  let coverage_of seed =
    (Pbse_exec.Concrete.run prog ~input:seed).Pbse_exec.Concrete.blocks_entered
  in
  let seed = Option.get (Driver.select_seed pool ~coverage_of) in
  Printf.printf "selected seed: %d bytes (out of %d candidates)\n" (Bytes.length seed)
    (List.length pool);

  let report = Driver.run prog ~seed ~deadline:hour in
  let pbse_cov =
    Pbse_exec.Coverage.count (Pbse_exec.Executor.coverage report.Driver.executor)
  in
  Printf.printf "pbSE: %d blocks in 1h (c-time %d, %d trap phases), %d bug(s)\n"
    pbse_cov report.Driver.c_time
    report.Driver.division.Pbse_phase.Phase.trap_count
    (List.length report.Driver.bugs);
  List.iter
    (fun ((bug : Pbse_exec.Bug.t), phase) ->
      Printf.printf "  phase %d: %s\n" phase (Pbse_exec.Bug.to_string bug))
    report.Driver.bugs;

  let klee =
    Pbse.Klee.run prog ~searcher:"random-path" ~input:(Bytes.make 1000 '\000')
      ~checkpoints:[ hour ]
  in
  let klee_cov = List.assoc hour klee.Pbse.Klee.checkpoints in
  Printf.printf "KLEE random-path (sym-1000): %d blocks in 1h, %d bug(s)\n" klee_cov
    (List.length klee.Pbse.Klee.bugs);
  Printf.printf "coverage ratio pbSE/KLEE: %.2f\n"
    (float_of_int pbse_cov /. float_of_int (max 1 klee_cov))
