(* Searcher duel: every KLEE search strategy against pbSE on pngtest,
   across increasing budgets — a miniature of the paper's Table I.

     dune exec examples/searcher_duel.exe [TARGET]

   Watch dfs start slow and recover, random-state plateau, and pbSE pull
   ahead once its phases are scheduled. *)

module Registry = Pbse_targets.Registry
module Searcher = Pbse_exec.Searcher
module Tablefmt = Pbse_util.Tablefmt

let budgets = [ 30_000; 120_000; 480_000 ]

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "pngtest" in
  let t =
    match Registry.by_name name with
    | Some t -> t
    | None ->
      prerr_endline ("unknown target " ^ name);
      exit 1
  in
  let prog = Registry.program t in
  let table =
    Tablefmt.create
      ("strategy" :: List.map (fun b -> Printf.sprintf "cov@%dk" (b / 1000)) budgets)
  in
  List.iter
    (fun searcher ->
      let r =
        Pbse.Klee.run prog ~searcher ~input:(Bytes.make 100 '\000') ~checkpoints:budgets
      in
      Tablefmt.add_row table
        (searcher
        :: List.map
             (fun b -> string_of_int (List.assoc b r.Pbse.Klee.checkpoints))
             budgets);
      Printf.printf "  ... %s done\n%!" searcher)
    Searcher.names;
  let report =
    Pbse.Driver.run prog ~seed:(Registry.default_seed t)
      ~deadline:(List.fold_left max 0 budgets)
  in
  Tablefmt.add_row table
    ("pbSE" :: List.map (fun b -> string_of_int (Pbse.Driver.coverage_at report b)) budgets);
  Tablefmt.print table
