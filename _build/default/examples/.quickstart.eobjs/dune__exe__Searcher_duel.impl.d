examples/searcher_duel.ml: Array Bytes List Pbse Pbse_exec Pbse_targets Pbse_util Printf Sys
