examples/searcher_duel.mli:
