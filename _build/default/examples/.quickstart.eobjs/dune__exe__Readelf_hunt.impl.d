examples/readelf_hunt.ml: Bytes List Option Pbse Pbse_exec Pbse_phase Pbse_targets Printf
