examples/phase_atlas.ml: Array Bytes List Pbse_concolic Pbse_exec Pbse_ir Pbse_phase Pbse_targets Pbse_util Printf
