examples/phase_atlas.mli:
