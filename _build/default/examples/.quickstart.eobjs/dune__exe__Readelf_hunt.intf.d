examples/readelf_hunt.mli:
