examples/quickstart.ml: Bytes Char List Pbse Pbse_exec Pbse_lang Pbse_phase Printf
