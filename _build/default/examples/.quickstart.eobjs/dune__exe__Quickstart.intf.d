examples/quickstart.mli:
