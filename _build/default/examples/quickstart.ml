(* Quickstart: compile a MiniC parser inline, run pbSE on it, and print
   the phases and the bug it finds.

     dune exec examples/quickstart.exe

   The program below is a toy "record file" parser with the structure the
   paper cares about: a magic check, an input-bounded loop (the trap
   phase), and a deeper handler hiding an out-of-bounds write. *)

let source =
  {|
// a record file: magic 'R' 'X', record count, then (tag, value) pairs
fn main() {
  if (in(0) != 'R') { return 1; }
  if (in(1) != 'X') { return 1; }
  var count = in(2);
  if (count > 32) { return 1; }
  var totals = alloc(16);
  var i = 0;
  while (i < count) {            // the trap: bounded by an input byte
    var tag = in(3 + i * 2);
    var value = in(4 + i * 2);
    if (tag < 16) {
      totals[tag] = t8(totals[tag] + value);
    } else {
      if (tag == 0x77) {
        totals[value] = 1;       // BUG: value is not bounded by 16
      }
    }
    i = i + 1;
  }
  out(totals[0]);
  return 0;
}
|}

let () =
  let program = Pbse_lang.Frontend.compile source in
  (* a benign seed: two small records *)
  let seed = Bytes.of_string "RX\002\001\010\002\020" in
  let report = Pbse.Driver.run program ~seed ~deadline:60_000 in

  let division = report.Pbse.Driver.division in
  Printf.printf "phases found: %d (of which %d trap phases)\n"
    (List.length division.Pbse_phase.Phase.phases)
    division.Pbse_phase.Phase.trap_count;
  Printf.printf "phase strip:  %s\n" (Pbse_phase.Phase.render_strip division);
  Printf.printf "blocks covered: %d\n"
    (Pbse_exec.Coverage.count
       (Pbse_exec.Executor.coverage report.Pbse.Driver.executor));

  match report.Pbse.Driver.bugs with
  | [] -> print_endline "no bugs found (try a larger --deadline)"
  | bugs ->
    List.iter
      (fun ((bug : Pbse_exec.Bug.t), phase) ->
        Printf.printf "bug in phase %d: %s\n" phase (Pbse_exec.Bug.to_string bug);
        print_string "witness bytes:";
        Bytes.iter (fun c -> Printf.printf " %02x" (Char.code c)) bug.Pbse_exec.Bug.witness;
        print_newline ())
      bugs
