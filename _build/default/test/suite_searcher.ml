open Pbse_exec
module Rng = Pbse_util.Rng

(* Dummy states: the searchers only look at ids, pc fields and flags. *)
let dummy_state id =
  Pbse_exec.State.create ~id ~nregs:1 ~mem:Mem.empty ~model:Pbse_smt.Model.empty ~fidx:0
    ~born:0

(* A small program so heuristic searchers have a CFG and coverage. *)
let cfg_and_coverage () =
  let prog =
    Pbse_lang.Frontend.compile
      "fn main() { var i = 0; while (i < in(0)) { i = i + 1; } if (i > 2) { out(i); } return 0; }"
  in
  let cfg = Pbse_ir.Cfg.build prog in
  (cfg, Coverage.create (Pbse_ir.Cfg.nblocks cfg))

let ids_of_drain searcher =
  (* repeatedly select and remove until empty *)
  let rec go acc =
    match searcher.Searcher.select () with
    | None -> List.rev acc
    | Some st ->
      searcher.Searcher.remove st;
      go (st.State.id :: acc)
  in
  go []

let test_dfs_lifo () =
  let s = Searcher.dfs () in
  List.iter (fun i -> s.Searcher.add (dummy_state i)) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "newest first" [ 3; 2; 1 ] (ids_of_drain s)

let test_dfs_fork_goes_deeper () =
  let s = Searcher.dfs () in
  let parent = dummy_state 1 in
  s.Searcher.add parent;
  s.Searcher.fork ~parent (dummy_state 2);
  (match s.Searcher.select () with
   | Some st -> Alcotest.(check int) "child selected first" 2 st.State.id
   | None -> Alcotest.fail "empty");
  Alcotest.(check int) "size" 2 (s.Searcher.size ())

let test_bfs_fifo () =
  let s = Searcher.bfs () in
  List.iter (fun i -> s.Searcher.add (dummy_state i)) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "oldest first" [ 1; 2; 3 ] (ids_of_drain s)

let test_random_state_selects_live () =
  let rng = Rng.create 5 in
  let s = Searcher.random_state rng in
  let states = List.init 10 dummy_state in
  List.iter s.Searcher.add states;
  let removed = List.filteri (fun i _ -> i mod 2 = 0) states in
  List.iter s.Searcher.remove removed;
  Alcotest.(check int) "size" 5 (s.Searcher.size ());
  for _ = 1 to 100 do
    match s.Searcher.select () with
    | Some st ->
      Alcotest.(check bool) "selected state is live" true (st.State.id mod 2 = 1)
    | None -> Alcotest.fail "empty"
  done

let test_random_path_tree () =
  let rng = Rng.create 7 in
  let s = Searcher.random_path rng in
  let root = dummy_state 0 in
  s.Searcher.add root;
  (* fork a small tree: 0 -> (0, 1), 1 -> (1, 2), 0 -> (0, 3) *)
  s.Searcher.fork ~parent:root (dummy_state 1);
  s.Searcher.fork ~parent:(dummy_state 1) (dummy_state 2);
  s.Searcher.fork ~parent:root (dummy_state 3);
  Alcotest.(check int) "four live states" 4 (s.Searcher.size ());
  let seen = Hashtbl.create 4 in
  for _ = 1 to 200 do
    match s.Searcher.select () with
    | Some st -> Hashtbl.replace seen st.State.id ()
    | None -> Alcotest.fail "empty"
  done;
  Alcotest.(check int) "every leaf reachable" 4 (Hashtbl.length seen);
  (* removing leaves prunes the tree *)
  s.Searcher.remove (dummy_state 2);
  s.Searcher.remove (dummy_state 3);
  Alcotest.(check int) "two left" 2 (s.Searcher.size ());
  for _ = 1 to 50 do
    match s.Searcher.select () with
    | Some st ->
      Alcotest.(check bool) "only live leaves" true
        (st.State.id = 0 || st.State.id = 1)
    | None -> Alcotest.fail "empty"
  done

let test_weighted_searchers_basic () =
  List.iter
    (fun make ->
      let cfg, coverage = cfg_and_coverage () in
      let s = make (Rng.create 3) cfg coverage in
      let states = List.init 20 dummy_state in
      List.iter s.Searcher.add states;
      Alcotest.(check int) "size" 20 (s.Searcher.size ());
      let seen = Hashtbl.create 16 in
      for _ = 1 to 400 do
        match s.Searcher.select () with
        | Some st ->
          Hashtbl.replace seen st.State.id ();
          Alcotest.(check bool) "valid id" true (st.State.id >= 0 && st.State.id < 20)
        | None -> Alcotest.fail "empty"
      done;
      Alcotest.(check bool) "spreads over many states" true (Hashtbl.length seen > 5);
      List.iter s.Searcher.remove states;
      Alcotest.(check int) "drained" 0 (s.Searcher.size ());
      Alcotest.(check bool) "select on empty" true (s.Searcher.select () = None))
    [ Searcher.covnew; Searcher.md2u ]

let test_covnew_prefers_fresh_cover () =
  let cfg, coverage = cfg_and_coverage () in
  let s = Searcher.covnew (Rng.create 11) cfg coverage in
  let stale = List.init 10 dummy_state in
  let fresh = dummy_state 99 in
  fresh.State.fresh_cover <- true;
  List.iter s.Searcher.add stale;
  s.Searcher.add fresh;
  let hits = ref 0 in
  let rounds = 600 in
  for _ = 1 to rounds do
    match s.Searcher.select () with
    | Some st -> if st.State.id = 99 then incr hits
    | None -> Alcotest.fail "empty"
  done;
  (* uniform would give ~1/11 = 55; the 8x boost should give ~4x that *)
  Alcotest.(check bool)
    (Printf.sprintf "boosted state selected often (%d/%d)" !hits rounds)
    true
    (!hits > rounds / 8)

let test_interleave_alternates () =
  let s = Searcher.interleave "both" [ Searcher.dfs (); Searcher.bfs () ] in
  List.iter (fun i -> s.Searcher.add (dummy_state i)) [ 1; 2; 3 ];
  let first = Option.get (s.Searcher.select ()) in
  let second = Option.get (s.Searcher.select ()) in
  Alcotest.(check int) "dfs first: newest" 3 first.State.id;
  Alcotest.(check int) "bfs second: oldest" 1 second.State.id

let test_interleave_rejects_empty () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Searcher.interleave "none" []);
       false
     with Invalid_argument _ -> true)

let test_by_name_covers_names () =
  List.iter
    (fun name ->
      Alcotest.(check bool) ("factory for " ^ name) true (Searcher.by_name name <> None))
    Searcher.names;
  Alcotest.(check bool) "unknown" true (Searcher.by_name "zigzag" = None)

let suite =
  [
    Alcotest.test_case "dfs lifo" `Quick test_dfs_lifo;
    Alcotest.test_case "dfs fork dives" `Quick test_dfs_fork_goes_deeper;
    Alcotest.test_case "bfs fifo" `Quick test_bfs_fifo;
    Alcotest.test_case "random-state live" `Quick test_random_state_selects_live;
    Alcotest.test_case "random-path tree" `Quick test_random_path_tree;
    Alcotest.test_case "weighted searchers" `Quick test_weighted_searchers_basic;
    Alcotest.test_case "covnew boost" `Quick test_covnew_prefers_fresh_cover;
    Alcotest.test_case "interleave alternates" `Quick test_interleave_alternates;
    Alcotest.test_case "interleave rejects empty" `Quick test_interleave_rejects_empty;
    Alcotest.test_case "by_name" `Quick test_by_name_covers_names;
  ]
