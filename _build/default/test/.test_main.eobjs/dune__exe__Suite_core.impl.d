test/suite_core.ml: Alcotest Buffer Bytes List Option Pbse Pbse_exec Pbse_lang Pbse_phase Pbse_targets Pbse_util Printf
