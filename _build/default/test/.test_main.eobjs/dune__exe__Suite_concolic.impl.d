test/suite_concolic.ml: Alcotest Array Bbv Bytes Concolic List Pbse_concolic Pbse_exec Pbse_lang Pbse_smt Pbse_util Printf Trace
