test/suite_phase.ml: Alcotest Array Gen Int Kmeans List Pbse_concolic Pbse_phase Pbse_util Phase Printf QCheck QCheck_alcotest String
