test/suite_mem.ml: Alcotest Bytes Concrete Int64 Mem Pbse_exec Pbse_ir Pbse_smt QCheck QCheck_alcotest
