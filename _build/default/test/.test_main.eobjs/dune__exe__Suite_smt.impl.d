test/suite_smt.ml: Alcotest Array Bool Bytes Expr Int64 Interval List Model Pbse_ir Pbse_smt QCheck QCheck_alcotest Semantics Solver
