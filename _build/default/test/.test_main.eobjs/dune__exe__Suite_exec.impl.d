test/suite_exec.ml: Alcotest Bug Builder Bytes Char Concrete Coverage Executor Gen Hashtbl Int64 List Pbse_exec Pbse_ir Pbse_lang Pbse_smt Pbse_util Printf QCheck QCheck_alcotest Searcher Types
