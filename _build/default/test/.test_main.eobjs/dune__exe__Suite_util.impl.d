test/suite_util.ml: Alcotest Array Int List Pbse_util Rng String Tablefmt Vclock
