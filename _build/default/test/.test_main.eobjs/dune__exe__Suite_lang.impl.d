test/suite_lang.ml: Alcotest Ast Bytes Frontend Int64 Pbse_exec Pbse_ir Pbse_lang Pbse_smt Printf QCheck QCheck_alcotest String
