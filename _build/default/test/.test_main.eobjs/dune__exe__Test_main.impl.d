test/test_main.ml: Alcotest Suite_concolic Suite_core Suite_exec Suite_ir Suite_lang Suite_mem Suite_phase Suite_searcher Suite_smt Suite_targets Suite_util
