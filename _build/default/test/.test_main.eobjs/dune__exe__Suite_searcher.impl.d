test/suite_searcher.ml: Alcotest Coverage Hashtbl List Mem Option Pbse_exec Pbse_ir Pbse_lang Pbse_smt Pbse_util Printf Searcher State
