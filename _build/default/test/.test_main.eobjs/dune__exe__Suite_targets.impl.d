test/suite_targets.ml: Alcotest Buffer Bytes Char Int64 List Option Pbse_concolic Pbse_exec Pbse_ir Pbse_lang Pbse_targets Pbse_util Printf String
