test/suite_ir.ml: Alcotest Array Builder Cfg Int List Pbse_ir Printer Printf String Validate
