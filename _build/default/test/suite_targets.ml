module Registry = Pbse_targets.Registry
module Concrete = Pbse_exec.Concrete
module Validate = Pbse_ir.Validate

let all_names = List.map (fun t -> t.Registry.name) Registry.all

let test_expected_targets_present () =
  List.iter
    (fun name ->
      Alcotest.(check bool) ("has " ^ name) true (Registry.by_name name <> None))
    [ "readelf"; "pngtest"; "gif2tiff"; "tiff2rgba"; "tiff2bw"; "dwarfdump"; "tcpdump" ];
  Alcotest.(check int) "seven targets" 7 (List.length Registry.all);
  Alcotest.(check bool) "unknown is none" true (Registry.by_name "nope" = None)

let test_all_compile_and_validate () =
  List.iter
    (fun t ->
      let prog = Registry.program t in
      Alcotest.(check (list string)) (t.Registry.name ^ " validates") []
        (List.map Validate.error_to_string (Validate.check_program prog));
      Alcotest.(check bool) (t.Registry.name ^ " is sizeable") true
        (Pbse_ir.Types.block_count prog > 60))
    Registry.all

let test_benign_seeds_run_clean () =
  List.iter
    (fun t ->
      let prog = Registry.program t in
      List.iter
        (fun (label, seed) ->
          let r = Concrete.run prog ~input:seed in
          match r.Concrete.outcome with
          | Concrete.Exit 0L -> ()
          | Concrete.Exit c ->
            Alcotest.fail
              (Printf.sprintf "%s/%s exited %Ld" t.Registry.name label c)
          | Concrete.Fault { detail; _ } ->
            Alcotest.fail (Printf.sprintf "%s/%s faulted: %s" t.Registry.name label detail)
          | Concrete.Halted { message; _ } ->
            Alcotest.fail (Printf.sprintf "%s/%s halted: %s" t.Registry.name label message)
          | Concrete.Out_of_fuel ->
            Alcotest.fail (Printf.sprintf "%s/%s ran out of fuel" t.Registry.name label))
        t.Registry.seeds)
    Registry.all

let test_buggy_seeds_fault_with_expected_kind () =
  List.iter
    (fun t ->
      let prog = Registry.program t in
      List.iter
        (fun (label, seed) ->
          let r = Concrete.run prog ~input:seed in
          match r.Concrete.outcome with
          | Concrete.Fault { kind; _ } ->
            let expected = List.map snd t.Registry.planted_bugs in
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s fault kind %s is planted" t.Registry.name label kind)
              true (List.mem kind expected)
          | _ ->
            Alcotest.fail
              (Printf.sprintf "%s/%s should fault" t.Registry.name label))
        t.Registry.buggy_seeds)
    Registry.all

let test_seed_lookup () =
  let t = Option.get (Registry.by_name "pngtest") in
  Alcotest.(check bool) "benign seed" true (Bytes.length (Registry.seed t "small") > 0);
  Alcotest.(check bool) "buggy seed" true
    (Bytes.length (Registry.seed t "buggy-month") > 0);
  Alcotest.(check bool) "unknown raises" true
    (try
       ignore (Registry.seed t "missing");
       false
     with Not_found -> true)

let test_planted_bug_totals_match_paper_scale () =
  (* the paper found 21 bugs: 2 libpng + 5 libtiff + 4 readelf + 10
     libdwarf; our analogs plant 2 + 5 + 4 + 8 (see DESIGN.md) *)
  let count name =
    match Registry.by_name name with
    | Some t -> List.length t.Registry.planted_bugs
    | None -> 0
  in
  Alcotest.(check int) "pngtest" 2 (count "pngtest");
  Alcotest.(check int) "libtiff family" 5
    (count "gif2tiff" + count "tiff2rgba" + count "tiff2bw");
  Alcotest.(check int) "readelf" 4 (count "readelf");
  Alcotest.(check int) "dwarfdump" 8 (count "dwarfdump");
  Alcotest.(check int) "tcpdump has none" 0 (count "tcpdump")

let test_cve_labels_reference_planted_bugs () =
  List.iter
    (fun t ->
      List.iter
        (fun (label, cve) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s labels a planted bug" t.Registry.name cve)
            true
            (List.mem_assoc label t.Registry.planted_bugs))
        t.Registry.cves)
    Registry.all

let test_seed_pools_have_sizes () =
  List.iter
    (fun t ->
      Alcotest.(check bool) (t.Registry.name ^ " has small seed") true
        (List.mem_assoc "small" t.Registry.seeds);
      Alcotest.(check bool) (t.Registry.name ^ " has large seed") true
        (List.mem_assoc "large" t.Registry.seeds);
      let small = List.assoc "small" t.Registry.seeds in
      let large = List.assoc "large" t.Registry.seeds in
      Alcotest.(check bool) (t.Registry.name ^ " large > small") true
        (Bytes.length large > Bytes.length small))
    Registry.all

(* Bug reachability through the engine itself: for each target with buggy
   seeds, running the *buggy* seed concolically terminates in the fault
   and the executor records a confirmed bug of a planted kind. *)
let test_buggy_seed_through_symbolic_engine () =
  List.iter
    (fun t ->
      let prog = Registry.program t in
      List.iter
        (fun (label, seed) ->
          let clock = Pbse_util.Vclock.create () in
          let exec = Pbse_exec.Executor.create ~clock prog ~input:seed in
          let ix = Pbse_concolic.Trace.indexer () in
          let result = Pbse_concolic.Concolic.run exec ix in
          (match result.Pbse_concolic.Concolic.outcome with
           | Pbse_concolic.Concolic.Stopped _ -> ()
           | _ ->
             Alcotest.fail
               (Printf.sprintf "%s/%s: concolic run should stop at the fault"
                  t.Registry.name label));
          match Pbse_exec.Executor.bugs exec with
          | [] -> Alcotest.fail (Printf.sprintf "%s/%s: no bug recorded" t.Registry.name label)
          | bug :: _ ->
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s: %s is planted" t.Registry.name label
                 bug.Pbse_exec.Bug.kind)
              true
              (List.mem bug.Pbse_exec.Bug.kind (List.map snd t.Registry.planted_bugs));
            Alcotest.(check bool) "confirmed by replay" true bug.Pbse_exec.Bug.confirmed)
        t.Registry.buggy_seeds)
    Registry.all

let test_sources_carry_bug_annotations () =
  List.iter
    (fun t ->
      List.iter
        (fun (label, _) ->
          let marker = "BUG(" ^ label in
          let found =
            let src = t.Registry.source and nl = String.length ("BUG(" ^ label) in
            let hl = String.length src in
            let rec scan i =
              i + nl <= hl && (String.sub src i nl = marker || scan (i + 1))
            in
            scan 0
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s source documents %s" t.Registry.name label)
            true found)
        t.Registry.planted_bugs)
    Registry.all

(* the MiniC prelude's ULEB128 decoder against an OCaml reference *)
let test_prelude_uleb () =
  let src =
    Pbse_targets.Prelude.wrap
      "fn main() { out(uleb(0)); out(uleb_len(0)); out(uleb(5)); out(uleb_len(5)); return 0; }"
  in
  let prog = Pbse_lang.Frontend.compile src in
  let encode v =
    let buf = Buffer.create 8 in
    let rec go v =
      if v < 0x80 then Buffer.add_char buf (Char.chr v)
      else begin
        Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7F)));
        go (v lsr 7)
      end
    in
    go v;
    Buffer.contents buf
  in
  List.iter
    (fun v ->
      let enc = encode v in
      let input = Bytes.of_string (enc ^ String.make 5 '\x00' ^ encode (v * 3)) in
      let input =
        (* place the second uleb at offset 5 regardless of enc length *)
        let b = Bytes.make 16 '\000' in
        Bytes.blit_string enc 0 b 0 (String.length enc);
        Bytes.blit_string (encode (v * 3)) 0 b 5 (String.length (encode (v * 3)));
        ignore input;
        b
      in
      let r = Concrete.run prog ~input in
      match r.Concrete.output with
      | [ v0; l0; v5; l5 ] ->
        Alcotest.(check int64) (Printf.sprintf "uleb %d" v) (Int64.of_int v) v0;
        Alcotest.(check int64) "len" (Int64.of_int (String.length enc)) l0;
        Alcotest.(check int64) "second value" (Int64.of_int (v * 3)) v5;
        Alcotest.(check bool) "second len positive" true (l5 > 0L)
      | _ -> Alcotest.fail "wrong output arity")
    [ 0; 1; 127; 128; 300; 16384; 99999 ]

let test_bug_to_string_mentions_fields () =
  let bug =
    {
      Pbse_exec.Bug.kind = "oob-read";
      gid = 7;
      location = "f/.2";
      detail = "deep trouble";
      witness = Bytes.make 3 'x';
      vtime = 42;
      state_id = 9;
      confirmed = true;
    }
  in
  let s = Pbse_exec.Bug.to_string bug in
  List.iter
    (fun fragment ->
      let nl = String.length fragment and hl = String.length s in
      let rec scan i = i + nl <= hl && (String.sub s i nl = fragment || scan (i + 1)) in
      Alcotest.(check bool) ("mentions " ^ fragment) true (scan 0))
    [ "oob-read"; "f/.2"; "deep trouble"; "confirmed"; "t=42" ]

let _ = all_names

let suite =
  [
    Alcotest.test_case "expected targets present" `Quick test_expected_targets_present;
    Alcotest.test_case "all compile and validate" `Quick test_all_compile_and_validate;
    Alcotest.test_case "benign seeds run clean" `Quick test_benign_seeds_run_clean;
    Alcotest.test_case "buggy seeds fault" `Quick test_buggy_seeds_fault_with_expected_kind;
    Alcotest.test_case "seed lookup" `Quick test_seed_lookup;
    Alcotest.test_case "planted bug totals" `Quick test_planted_bug_totals_match_paper_scale;
    Alcotest.test_case "cve labels valid" `Quick test_cve_labels_reference_planted_bugs;
    Alcotest.test_case "seed pools sized" `Quick test_seed_pools_have_sizes;
    Alcotest.test_case "buggy seeds through engine" `Quick
      test_buggy_seed_through_symbolic_engine;
    Alcotest.test_case "sources annotate bugs" `Quick test_sources_carry_bug_annotations;
    Alcotest.test_case "prelude uleb" `Quick test_prelude_uleb;
    Alcotest.test_case "bug to_string" `Quick test_bug_to_string_mentions_fields;
  ]
