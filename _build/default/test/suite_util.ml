open Pbse_util

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_copy () =
  let a = Rng.create 7 in
  let _ = Rng.next_int64 a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next_int64 a) (Rng.next_int64 b)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  Alcotest.(check bool) "split differs from parent" true
    (Rng.next_int64 a <> Rng.next_int64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 1 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done

let test_rng_int_rejects_nonpositive () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_float_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_rng_pick () =
  let rng = Rng.create 9 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "picked element" true (Array.mem (Rng.pick rng arr) arr)
  done

let test_rng_shuffle_is_permutation () =
  let rng = Rng.create 11 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_int_roughly_uniform () =
  let rng = Rng.create 5 in
  let counts = Array.make 4 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let v = Rng.int rng 4 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "within 10% of uniform" true
        (abs (c - (n / 4)) < n / 10))
    counts

let test_vclock_basics () =
  let c = Vclock.create () in
  Alcotest.(check int) "starts at zero" 0 (Vclock.now c);
  Vclock.tick c;
  Vclock.advance c 10;
  Alcotest.(check int) "tick + advance" 11 (Vclock.now c);
  Vclock.reset c;
  Alcotest.(check int) "reset" 0 (Vclock.now c)

let test_vclock_rejects_negative () =
  let c = Vclock.create () in
  Alcotest.check_raises "negative advance"
    (Invalid_argument "Vclock.advance: negative increment") (fun () ->
      Vclock.advance c (-1))

let test_table_render () =
  let t = Tablefmt.create [ "name"; "bbs" ] in
  Tablefmt.add_row t [ "dfs"; "414" ];
  Tablefmt.add_row t [ "pbSE" ];
  let out = Tablefmt.render t in
  Alcotest.(check bool) "has header" true
    (String.length out > 0 && String.sub out 0 1 = "|");
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "header + separator + 2 rows" 4 (List.length lines);
  List.iter
    (fun line ->
      Alcotest.(check int) "aligned widths" (String.length (List.hd lines))
        (String.length line))
    lines

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng copy" `Quick test_rng_copy;
    Alcotest.test_case "rng split independent" `Quick test_rng_split_independent;
    Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng int rejects nonpositive" `Quick test_rng_int_rejects_nonpositive;
    Alcotest.test_case "rng float bounds" `Quick test_rng_float_bounds;
    Alcotest.test_case "rng pick" `Quick test_rng_pick;
    Alcotest.test_case "rng shuffle permutation" `Quick test_rng_shuffle_is_permutation;
    Alcotest.test_case "rng roughly uniform" `Quick test_rng_int_roughly_uniform;
    Alcotest.test_case "vclock basics" `Quick test_vclock_basics;
    Alcotest.test_case "vclock rejects negative" `Quick test_vclock_rejects_negative;
    Alcotest.test_case "tablefmt render" `Quick test_table_render;
  ]
