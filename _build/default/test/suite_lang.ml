open Pbse_lang

let run_main ?(input = "") src =
  let prog = Frontend.compile src in
  Pbse_exec.Concrete.run prog ~input:(Bytes.of_string input)

let check_output name src expected =
  let result = run_main src in
  (match result.Pbse_exec.Concrete.outcome with
   | Pbse_exec.Concrete.Exit _ -> ()
   | _ -> Alcotest.fail (name ^ ": program did not exit cleanly"));
  Alcotest.(check (list int64)) name expected result.Pbse_exec.Concrete.output

let test_arith_and_out () =
  check_output "arith"
    "fn main() { out(2 + 3 * 4); out(10 - 7); out(1 << 6); return 0; }"
    [ 14L; 3L; 64L ]

let test_variables_and_scopes () =
  check_output "scopes"
    "fn main() {\n\
    \  var x = 5;\n\
    \  if (x > 3) { var x = 50; out(x); }\n\
    \  out(x);\n\
    \  return 0;\n\
     }"
    [ 50L; 5L ]

let test_while_loop () =
  check_output "while"
    "fn main() { var i = 0; var sum = 0; while (i < 5) { sum = sum + i; i = i + 1; } out(sum); return 0; }"
    [ 10L ]

let test_for_loop_break_continue () =
  check_output "for/break/continue"
    "fn main() {\n\
    \  var sum = 0;\n\
    \  for (var i = 0; i < 10; i = i + 1) {\n\
    \    if (i == 3) { continue; }\n\
    \    if (i == 6) { break; }\n\
    \    sum = sum + i;\n\
    \  }\n\
    \  out(sum);\n\
    \  return 0;\n\
     }"
    [ 12L ] (* 0+1+2+4+5 *)

let test_functions_and_recursion () =
  check_output "recursion"
    "fn fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }\n\
     fn main() { out(fib(10)); return 0; }"
    [ 55L ]

let test_short_circuit () =
  (* the right operand would fault; && must not evaluate it *)
  check_output "short circuit and"
    "fn boom() { var p = 0; return p[0]; }\n\
     fn main() { var a = 0; if (a != 0 && boom()) { out(1); } else { out(2); } return 0; }"
    [ 2L ];
  check_output "short circuit or"
    "fn boom() { var p = 0; return p[0]; }\n\
     fn main() { var a = 1; if (a == 1 || boom()) { out(3); } else { out(4); } return 0; }"
    [ 3L ]

let test_memory_builtins () =
  check_output "alloc/store/load"
    "fn main() {\n\
    \  var b = alloc(16);\n\
    \  st32(b, 0xDEADBEEF);\n\
    \  out(ld32(b));\n\
    \  out(ld16(b));\n\
    \  b[8] = 0x7F;\n\
    \  out(b[8]);\n\
    \  free(b);\n\
    \  return 0;\n\
     }"
    [ 0xDEADBEEFL; 0xBEEFL; 0x7FL ]

let test_trunc_sext () =
  check_output "trunc/sext"
    "fn main() { out(t8(0x1FF)); out(s8(0xFF)); out(t16(0x12345)); return 0; }"
    [ 0xFFL; -1L; 0x2345L ]

let test_unsigned_ops () =
  check_output "unsigned compare and div"
    "fn main() {\n\
    \  var big = 0 - 1;\n\
    \  out(big <u 5);\n\
    \  out(5 <u big);\n\
    \  out(big < 5);\n\
    \  out(7 / 2);\n\
    \  out(7 % 2);\n\
    \  out(sdiv(0 - 7, 2));\n\
    \  return 0;\n\
     }"
    [ 0L; 1L; 1L; 3L; 1L; -3L ]

let test_input_intrinsics () =
  let result =
    run_main ~input:"AZ"
      "fn main() { out(in(0)); out(in(1)); out(in(7)); out(in_size()); return 0; }"
  in
  Alcotest.(check (list int64)) "input" [ 65L; 90L; 0L; 2L ]
    result.Pbse_exec.Concrete.output

let test_halt () =
  let result = run_main "fn main() { halt(\"bad state\"); }" in
  match result.Pbse_exec.Concrete.outcome with
  | Pbse_exec.Concrete.Halted { message; _ } ->
    Alcotest.(check string) "message" "bad state" message
  | _ -> Alcotest.fail "expected halt"

let test_assert_failure () =
  let result = run_main "fn main() { assert(1 == 2); return 0; }" in
  match result.Pbse_exec.Concrete.outcome with
  | Pbse_exec.Concrete.Halted { message; _ } ->
    Alcotest.(check bool) "assertion message" true
      (String.length message >= 16 && String.sub message 0 16 = "assertion failed")
  | _ -> Alcotest.fail "expected assert halt"

let test_assert_success () =
  check_output "assert passes" "fn main() { assert(1 == 1); out(9); return 0; }" [ 9L ]

let expect_error name src fragment =
  match Frontend.compile_result src with
  | Ok _ -> Alcotest.fail (name ^ ": expected a compile error")
  | Error msg ->
    let contains =
      let nl = String.length fragment and hl = String.length msg in
      let rec scan i = i + nl <= hl && (String.sub msg i nl = fragment || scan (i + 1)) in
      scan 0
    in
    if not contains then
      Alcotest.fail (Printf.sprintf "%s: error %S does not mention %S" name msg fragment)

let test_errors () =
  expect_error "unknown variable" "fn main() { out(y); return 0; }" "unknown variable y";
  expect_error "unknown function" "fn main() { out(nope(1)); return 0; }"
    "unknown function nope";
  expect_error "duplicate function" "fn f() { return 0; } fn f() { return 1; } fn main() { return 0; }"
    "duplicate function f";
  expect_error "builtin shadow" "fn alloc(n) { return 0; } fn main() { return 0; }"
    "shadows a builtin";
  expect_error "break outside loop" "fn main() { break; }" "break outside a loop";
  expect_error "arity" "fn f(a, b) { return a + b; } fn main() { return f(1); }"
    "expects 2 arguments, got 1";
  expect_error "bad lhs" "fn main() { 1 + 2 = 3; return 0; }" "left-hand side";
  expect_error "parse error" "fn main() { var = 3; }" "expected identifier";
  expect_error "lex error" "fn main() { var x = $; }" "unexpected character";
  expect_error "duplicate variable" "fn main() { var x = 1; var x = 2; return 0; }"
    "already declared";
  expect_error "no main" "fn other() { return 0; }" "main"

let test_switch_statement () =
  check_output "switch arms"
    "fn classify(x) {\n\
    \  switch (x) {\n\
    \    case 1: { return 100; }\n\
    \    case 'A': { return 200; }\n\
    \    case 0x10: { return 300; }\n\
    \    default: { return 400; }\n\
    \  }\n\
    \  return 999;\n\
     }\n\
     fn main() { out(classify(1)); out(classify(65)); out(classify(16)); out(classify(7)); return 0; }"
    [ 100L; 200L; 300L; 400L ]

let test_switch_fallthrough_free () =
  (* arms do not fall through; execution continues after the switch *)
  check_output "switch join"
    "fn main() {\n\
    \  var r = 0;\n\
    \  switch (2) {\n\
    \    case 1: { r = 10; }\n\
    \    case 2: { r = 20; }\n\
    \  }\n\
    \  out(r);\n\
    \  return 0;\n\
     }"
    [ 20L ]

let test_switch_empty_default () =
  check_output "switch without default"
    "fn main() { switch (9) { case 1: { out(1); } } out(5); return 0; }" [ 5L ]

let test_switch_errors () =
  expect_error "duplicate case"
    "fn main() { switch (1) { case 1: { } case 1: { } } return 0; }" "duplicate case";
  expect_error "duplicate default"
    "fn main() { switch (1) { default: { } default: { } } return 0; }"
    "duplicate default";
  expect_error "non-literal case"
    "fn main() { var x = 1; switch (1) { case x: { } } return 0; }"
    "integer literal"

let test_comments () =
  check_output "comments"
    "// leading comment\nfn main() { /* inline */ out(1); // trailing\n return 0; }"
    [ 1L ]

let test_char_and_hex_literals () =
  check_output "literals" "fn main() { out('A'); out(0x10); out('\\n'); return 0; }"
    [ 65L; 16L; 10L ]

(* qcheck: random constant expressions evaluate identically in MiniC (via
   lexer, parser, lowering and the concrete interpreter) and directly via
   the shared scalar semantics. *)
type cexpr =
  | Clit of int64
  | Cbin of Ast.binary_op * cexpr * cexpr
  | Cun of Ast.unary_op * cexpr

let rec render = function
  | Clit v ->
    if v < 0L then Printf.sprintf "(0 - %Ld)" (Int64.neg v) else Int64.to_string v
  | Cun (op, a) ->
    let s = match op with Ast.Uneg -> "-" | Ast.Ulognot -> "!" | Ast.Ubitnot -> "~" in
    Printf.sprintf "(%s%s)" s (render a)
  | Cbin (op, a, b) ->
    let s =
      match op with
      | Ast.Badd -> "+"
      | Ast.Bsub -> "-"
      | Ast.Bmul -> "*"
      | Ast.Band -> "&"
      | Ast.Bor -> "|"
      | Ast.Bxor -> "^"
      | Ast.Bshl -> "<<"
      | Ast.Bshr -> ">>"
      | Ast.Bashr -> ">>>"
      | Ast.Blt -> "<"
      | Ast.Ble -> "<="
      | Ast.Bgt -> ">"
      | Ast.Bge -> ">="
      | Ast.Bult -> "<u"
      | Ast.Bule -> "<=u"
      | Ast.Bugt -> ">u"
      | Ast.Buge -> ">=u"
      | Ast.Beq -> "=="
      | Ast.Bne -> "!="
      | Ast.Bland -> "&&"
      | Ast.Blor -> "||"
      | Ast.Bdiv | Ast.Brem -> assert false
    in
    Printf.sprintf "(%s %s %s)" (render a) s (render b)

let rec ceval = function
  | Clit v -> v
  | Cun (op, a) -> (
    let va = ceval a in
    let module S = Pbse_smt.Semantics in
    match op with
    | Ast.Uneg -> S.unop Pbse_ir.Types.Neg va
    | Ast.Ubitnot -> S.unop Pbse_ir.Types.Not va
    | Ast.Ulognot -> if va = 0L then 1L else 0L)
  | Cbin (op, a, b) -> (
    let va = ceval a and vb = ceval b in
    let module S = Pbse_smt.Semantics in
    let module T = Pbse_ir.Types in
    match op with
    | Ast.Badd -> S.binop T.Add va vb
    | Ast.Bsub -> S.binop T.Sub va vb
    | Ast.Bmul -> S.binop T.Mul va vb
    | Ast.Band -> S.binop T.And va vb
    | Ast.Bor -> S.binop T.Or va vb
    | Ast.Bxor -> S.binop T.Xor va vb
    | Ast.Bshl -> S.binop T.Shl va vb
    | Ast.Bshr -> S.binop T.Lshr va vb
    | Ast.Bashr -> S.binop T.Ashr va vb
    | Ast.Blt -> S.binop T.Slt va vb
    | Ast.Ble -> S.binop T.Sle va vb
    | Ast.Bgt -> S.binop T.Slt vb va
    | Ast.Bge -> S.binop T.Sle vb va
    | Ast.Bult -> S.binop T.Ult va vb
    | Ast.Bule -> S.binop T.Ule va vb
    | Ast.Bugt -> S.binop T.Ult vb va
    | Ast.Buge -> S.binop T.Ule vb va
    | Ast.Beq -> S.binop T.Eq va vb
    | Ast.Bne -> S.binop T.Ne va vb
    | Ast.Bland -> if va <> 0L && vb <> 0L then 1L else 0L
    | Ast.Blor -> if va <> 0L || vb <> 0L then 1L else 0L
    | Ast.Bdiv | Ast.Brem -> assert false)

let gen_cexpr =
  let open QCheck.Gen in
  let ops =
    [
      Ast.Badd; Ast.Bsub; Ast.Bmul; Ast.Band; Ast.Bor; Ast.Bxor; Ast.Bshl; Ast.Bshr;
      Ast.Bashr; Ast.Blt; Ast.Ble; Ast.Bgt; Ast.Bge; Ast.Bult; Ast.Bule; Ast.Bugt;
      Ast.Buge; Ast.Beq; Ast.Bne; Ast.Bland; Ast.Blor;
    ]
  in
  let lit = map (fun i -> Clit (Int64.of_int i)) (int_range (-100) 1000) in
  fix
    (fun self n ->
      if n <= 0 then lit
      else
        frequency
          [
            (1, lit);
            (4, map3 (fun op a b -> Cbin (op, a, b)) (oneofl ops) (self (n / 2)) (self (n / 2)));
            ( 2,
              map2
                (fun op a -> Cun (op, a))
                (oneofl [ Ast.Uneg; Ast.Ulognot; Ast.Ubitnot ])
                (self (n - 1)) );
          ])
    5

let prop_compiled_expressions_match =
  QCheck.Test.make ~count:300 ~name:"compiled constant expressions match direct evaluation"
    (QCheck.make gen_cexpr)
    (fun ce ->
      let src = Printf.sprintf "fn main() { out(%s); return 0; }" (render ce) in
      let result = run_main src in
      result.Pbse_exec.Concrete.output = [ ceval ce ])

let suite =
  [
    Alcotest.test_case "arith and out" `Quick test_arith_and_out;
    Alcotest.test_case "variables and scopes" `Quick test_variables_and_scopes;
    Alcotest.test_case "while loop" `Quick test_while_loop;
    Alcotest.test_case "for/break/continue" `Quick test_for_loop_break_continue;
    Alcotest.test_case "functions and recursion" `Quick test_functions_and_recursion;
    Alcotest.test_case "short circuit" `Quick test_short_circuit;
    Alcotest.test_case "memory builtins" `Quick test_memory_builtins;
    Alcotest.test_case "trunc/sext" `Quick test_trunc_sext;
    Alcotest.test_case "unsigned ops" `Quick test_unsigned_ops;
    Alcotest.test_case "input intrinsics" `Quick test_input_intrinsics;
    Alcotest.test_case "halt" `Quick test_halt;
    Alcotest.test_case "assert failure" `Quick test_assert_failure;
    Alcotest.test_case "assert success" `Quick test_assert_success;
    Alcotest.test_case "compile errors" `Quick test_errors;
    Alcotest.test_case "switch statement" `Quick test_switch_statement;
    Alcotest.test_case "switch join" `Quick test_switch_fallthrough_free;
    Alcotest.test_case "switch empty default" `Quick test_switch_empty_default;
    Alcotest.test_case "switch errors" `Quick test_switch_errors;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "char and hex literals" `Quick test_char_and_hex_literals;
    QCheck_alcotest.to_alcotest prop_compiled_expressions_match;
  ]
